package codegen

import (
	"context"
	"sync/atomic"

	"spin/internal/stripe"
)

// Ahead-of-time plan specialization — the reproduction's answer to the
// paper's runtime code generation for the multi-binding case. The generic
// interpreter in plan.go dispatches per step through the unit list,
// `step.call`, and `Body.Run`, paying a chain of branches and an indirect
// dispatch per step on every raise. SPIN's generator instead emitted one
// straight-line stub per plan. Go cannot emit machine code at runtime, but
// it can do the next-closest thing at plan-compile time:
//
//   - the guard decision structure is flattened: every step's guard
//     conjunction (And-trees, multiple guards) is lowered into one
//     contiguous array of leaf comparisons (flatPred) shared by the whole
//     plan, evaluated by a branch-predictable switch with no recursion and
//     no per-guard indirect call;
//   - handler bodies are lowered into the step record (flatStep), so the
//     common inline bodies run without touching *Body or *Binding;
//   - one executor specialized over (arity 0..5/any) × (no-result,
//     result-fold) × (guarded, unguarded) is selected once at compile time
//     (flatExecs), so a raise runs straight-line code with no per-raise
//     shape switching;
//   - statistics are batched: per-binding fire counts go through one
//     stripe shard index hoisted by the caller (Binding.FireCount), and the
//     event-level fired total is added once per raise to Env.FiredTotal
//     instead of once per firing through Env.OnFire — the striped-atomic
//     traffic that dominated the inline-plan profile drops from 2 RMWs per
//     firing plus 1 per raise to 1 per firing plus 2 per raise, all through
//     one shard hash.
//
// Specialization is semantics-preserving and only replaces configurations
// the interpreter handles bitwise-identically when the knobs below keep it
// off; the differential fuzzers (FuzzPredCompile, FuzzTreeDispatch) compare
// every specialized shape against naive reference evaluation.
//
// Eligibility (compileFlat): every step synchronous and unfiltered, no
// fault-capture hook (recovery barriers are open-coded in the interpreter),
// no decision-tree unit (the hashed lookup beats a linear flat scan for the
// ≥4-way runs trees cover), and no unguarded direct bypass (already a plain
// call). Metered raises (Env.CPU != nil) always take the interpreter so the
// virtual-time charge sequence stays byte-identical to the ablation tables.

// flatPred ops beyond the inlinable PredOp leaves: an arbitrary predicate
// subtree evaluated through Pred.Eval, and an out-of-line guard function.
const (
	predOpTree PredOp = -1
	predOpCall PredOp = -2
)

// flatPred is one lowered guard leaf. All leaves of a step's guard
// conjunction are contiguous in Plan.flatPreds; evaluation short-circuits
// at the first failing leaf.
type flatPred struct {
	op   PredOp
	arg  int
	k    uint64
	cell *atomic.Uint64
	tree *Pred   // predOpTree: Or/Not subtree, evaluated via Eval
	fn   GuardFn // predOpCall: out-of-line guard
	clo  any
}

// flatStep is one pre-lowered dispatch step: guard range, handler body,
// and statistics hook, with no pointer chase through step/Binding/Body on
// the hot path.
type flatStep struct {
	// g0 is the step's first guard leaf, embedded so the overwhelmingly
	// common single-guard step never touches the shared pool; its zero
	// value (PredTrue) always passes. p0..p1 index any remaining leaves in
	// Plan.flatPreds.
	g0     flatPred
	p0, p1 int32
	// Inline body, embedded (inline == true).
	inline bool
	bop    BodyOp
	bv     any
	bcell  *atomic.Uint64
	bk     uint64
	barg   int
	// Out-of-line body (inline == false).
	fn    HandlerFn
	ctxFn CtxHandlerFn
	clo   any
	// Statistics: per-binding fire counter (may be nil) and the opaque tag
	// for the per-fire Env.OnFire fallback.
	fire *stripe.Counter
	tag  any
}

// ExecFn is a compiled executor: selected once per plan, called per raise.
// stripeIdx is the caller's hoisted stripe shard index (stripe.Index()),
// reused for every striped counter the raise touches.
type ExecFn func(p *Plan, env *Env, args []any, stripeIdx int) Outcome

// flattenPred lowers a guard predicate into conjunction leaves. Top-level
// And-trees split into their leaves; True leaves are elided (guards are
// FUNCTIONAL, so elision is unobservable); any other composite (Or, Not)
// stays a single Eval-fallback leaf. Returns false when the predicate can
// never pass (a constant-false leaf under DisablePeephole still lowers —
// the step simply never fires, same as the interpreter).
func flattenPred(p *Pred, out []flatPred) []flatPred {
	switch p.Op {
	case PredAnd:
		return flattenPred(p.R, flattenPred(p.L, out))
	case PredTrue:
		return out
	case PredFalse:
		return append(out, flatPred{op: PredFalse})
	case PredGlobalEq, PredGlobalNe:
		if p.Cell == nil {
			// Pred.Eval treats a nil cell as false; preserve that.
			return append(out, flatPred{op: PredFalse})
		}
		return append(out, flatPred{op: p.Op, cell: p.Cell, k: p.K})
	case PredArgEq, PredArgNe, PredArgLt:
		return append(out, flatPred{op: p.Op, arg: p.Arg, k: p.K})
	default:
		return append(out, flatPred{op: predOpTree, tree: p})
	}
}

// lowerBody fills a flatStep's body fields from one binding, mirroring
// step.call / Plan.runBinding exactly: the inline body runs embedded when
// the step compiled inline; otherwise CtxFn is preferred over Fn.
func (fs *flatStep) lowerBody(b *Binding, inline bool) {
	fs.inline = inline
	fs.tag = b.Tag
	fs.fire = b.FireCount
	if inline {
		body := b.Inline
		fs.bop = body.Op
		fs.bv = body.V
		fs.bcell = body.Cell
		fs.bk = body.K
		fs.barg = body.Arg
		return
	}
	fs.fn = b.Fn
	fs.ctxFn = b.CtxFn
	fs.clo = b.Closure
}

// compileFlat lowers the plan into its flattened form and selects the
// specialized executor, or leaves the plan on the interpreter when any
// step needs machinery the straight-line executors do not carry.
func (p *Plan) compileFlat() {
	if p.opts.DisableSpecialize || p.protect != nil || p.direct != nil {
		return
	}
	for i := range p.units {
		if p.units[i].single == nil {
			return // decision tree: hashed lookup beats a flat scan
		}
	}
	for i := range p.steps {
		b := p.steps[i].b
		if b.Async || b.Ephemeral || b.Filter {
			return
		}
	}
	flat := make([]flatStep, len(p.steps))
	var preds []flatPred
	for i := range p.steps {
		st := &p.steps[i]
		fs := &flat[i]
		start := len(preds)
		for gi := range st.guards {
			g := &st.guards[gi]
			switch {
			case g.Pred != nil:
				// With inlining disabled the interpreter still evaluates the
				// predicate out of line via Eval; lowering it to leaves is
				// observationally identical (metered charge differences do
				// not apply — metered raises take the interpreter).
				preds = flattenPred(g.Pred, preds)
			default:
				preds = append(preds, flatPred{op: predOpCall, fn: g.Fn, clo: g.Closure})
			}
		}
		if len(preds) > start {
			// Hoist the first leaf into the step record; the pool keeps the
			// slot so later steps' ranges stay simple offsets.
			fs.g0 = preds[start]
			fs.p0 = int32(start + 1)
		} else {
			fs.p0 = int32(start)
		}
		fs.p1 = int32(len(preds))
		fs.lowerBody(st.b, st.inline)
	}
	var def *flatStep
	if b := p.defaultB; b != nil {
		def = &flatStep{}
		def.lowerBody(b, b.Inline != nil && !p.opts.DisableInline)
	}
	p.flat = flat
	p.flatPreds = preds
	p.flatDefault = def

	res := 0
	if p.info.HasResult {
		res = 1
	}
	g := 0
	if len(preds) > 0 {
		g = 1
	}
	ar := p.info.Arity
	if ar > 5 || p.opts.DisableShapeSpecialize {
		ar = arityAnyIdx
	}
	if p.opts.DisableShapeSpecialize {
		// Ablation middle tier: flattened guard trees and lowered bodies,
		// but the one generic-shape executor (arity-any, guard loop always
		// present) instead of the compile-time-selected variant.
		g = 1
	}
	p.flatExec = flatExecs[ar][res][g]
	p.flatBatchExec = flatBatchExecs[ar][res][g]
}

// Specialized reports whether the plan compiled to a flattened,
// shape-specialized executor (for tests and disassembly).
func (p *Plan) Specialized() bool { return p.flatExec != nil }

// GuardedBypass reports whether the plan is a single guarded step compiled
// straight-line — the guarded resident of the bypass tier: the dispatcher
// skips the interpreter entirely and the executor runs one embedded guard
// conjunction and one embedded body with no step loop. (The unguarded
// resident is Direct.)
func (p *Plan) GuardedBypass() bool {
	return p.flatExec != nil && len(p.flat) == 1 && len(p.flatPreds) > 0
}

// FastExec returns the plan's specialized executor when the plan can be
// raised without any per-raise branching beyond the executor itself: a
// flattened plan with no tracing compiled in (traced plans must draw the
// sampling decision, which Execute handles). The dispatcher hoists the
// returned function past the interpreter entirely — this is how
// guard-constant and single-inline-guard plans reach the bypass tier.
// Returns nil when the caller must use Execute.
func (p *Plan) FastExec() ExecFn {
	if p.prog != nil {
		return nil
	}
	return p.flatExec
}

// Shape markers. The executor is instantiated over every (arity, result,
// guarded) combination so each shape is a distinct straight-line function
// chosen once at compile time. Each marker has a distinct size on purpose:
// Go's gcshape stenciling folds all zero-size type arguments into one
// shared instantiation whose shape methods dispatch through a generics
// dictionary at run time. Distinct sizes force a fully stenciled
// instantiation per shape, so the methods below resolve to constants at
// compile time and each executor's dead branches (the guard walk in
// unguarded shapes, the result fold in void shapes) are eliminated
// outright — the closest Go gets to the paper's per-plan generated stubs.
type (
	arity0   [1]byte
	arity1   [2]byte
	arity2   [3]byte
	arity3   [4]byte
	arity4   [5]byte
	arity5   [6]byte
	arityAny [7]byte
)

const arityAnyIdx = 6

type (
	resultVoid [1]byte
	resultFold [2]byte
)

type (
	unguarded [1]byte
	guarded   [2]byte
)

type aritySpec interface{ arity() int }

func (arity0) arity() int   { return 0 }
func (arity1) arity() int   { return 1 }
func (arity2) arity() int   { return 2 }
func (arity3) arity() int   { return 3 }
func (arity4) arity() int   { return 4 }
func (arity5) arity() int   { return 5 }
func (arityAny) arity() int { return -1 }

type resultSpec interface{ hasResult() bool }

func (resultVoid) hasResult() bool { return false }
func (resultFold) hasResult() bool { return true }

type guardSpec interface{ guarded() bool }

func (unguarded) guarded() bool { return false }
func (guarded) guarded() bool   { return true }

// runFlatBody executes one lowered step body and returns its result,
// mirroring step.call exactly.
func runFlatBody(s *flatStep, args []any) any {
	if s.inline {
		switch s.bop {
		case BodyReturnConst:
			return s.bv
		case BodyAddWord:
			if s.bcell != nil {
				s.bcell.Add(s.bk)
			}
		case BodyReturnArg:
			if s.barg >= 0 && s.barg < len(args) {
				return args[s.barg]
			}
		}
		return nil
	}
	if s.ctxFn != nil {
		return s.ctxFn(context.Background(), s.clo, args)
	}
	return s.fn(s.clo, args)
}

// execFlat is the one executor body behind every specialized shape. The
// type parameters pin the shape at instantiation: because the marker types
// have distinct sizes (see above), every entry in flatExecs is its own
// stenciled function where hasResult/useGuards are compile-time constants
// and the branches they gate are folded away.
//
// Statistics protocol: when env.FiredTotal is set (the dispatcher's
// batched path), per-binding counts go to FireCount through the caller's
// hoisted stripe shard index and the event total is added once at the end;
// otherwise the executor falls back to the interpreter's per-fire
// env.OnFire contract, so direct codegen users observe identical callbacks.
func execFlat[A aritySpec, R resultSpec, G guardSpec](p *Plan, env *Env, args []any, idx int) Outcome {
	var aSpec A
	var rSpec R
	var gSpec G
	_ = aSpec.arity()
	hasResult := rSpec.hasResult()
	useGuards := gSpec.guarded()

	onFire := env.OnFire
	fired := env.FiredTotal
	batched := fired != nil
	preds := p.flatPreds
	flat := p.flat
	var out Outcome
	var haveResult bool
steps:
	for i := range flat {
		s := &flat[i]
		if useGuards {
			// The embedded first leaf (g0) evaluates without touching the
			// shared pool; pooled leaves (p0..p1) follow. One switch in the
			// source serves both, walked leaf-by-leaf.
			pr := &s.g0
			j := s.p0
			for {
				switch pr.op {
				case PredGlobalEq:
					if pr.cell.Load() != pr.k {
						continue steps
					}
				case PredGlobalNe:
					if pr.cell.Load() == pr.k {
						continue steps
					}
				case PredArgEq:
					if w, ok := argWord(args, pr.arg); !ok || w != pr.k {
						continue steps
					}
				case PredArgNe:
					if w, ok := argWord(args, pr.arg); !ok || w == pr.k {
						continue steps
					}
				case PredArgLt:
					if w, ok := argWord(args, pr.arg); !ok || w >= pr.k {
						continue steps
					}
				case PredFalse:
					continue steps
				case predOpTree:
					if !pr.tree.Eval(args) {
						continue steps
					}
				case predOpCall:
					if !pr.fn(pr.clo, args) {
						continue steps
					}
				}
				if j >= s.p1 {
					break
				}
				pr = &preds[j]
				j++
			}
		}
		// The inline-body cases are open-coded (rather than calling
		// runFlatBody) so the common Nop/ReturnConst/AddWord bodies run
		// without a call frame.
		var res any
		if s.inline {
			switch s.bop {
			case BodyReturnConst:
				res = s.bv
			case BodyAddWord:
				if s.bcell != nil {
					s.bcell.Add(s.bk)
				}
			case BodyReturnArg:
				if s.barg >= 0 && s.barg < len(args) {
					res = args[s.barg]
				}
			}
		} else if s.ctxFn != nil {
			res = s.ctxFn(context.Background(), s.clo, args)
		} else {
			res = s.fn(s.clo, args)
		}
		out.Fired++
		if batched {
			if s.fire != nil {
				s.fire.AddAt(idx, 1)
			}
		} else if onFire != nil {
			onFire(s.tag)
		}
		if hasResult {
			if p.resultFn != nil {
				out.Result = p.resultFn(out.Result, res, out.Fired-1)
			} else {
				if haveResult {
					out.Ambiguous = true
				}
				out.Result = res
				haveResult = true
			}
		}
	}
	if out.Fired == 0 && p.flatDefault != nil {
		d := p.flatDefault
		out.Result = runFlatBody(d, args)
		out.UsedDefault = true
		if batched {
			if d.fire != nil {
				d.fire.AddAt(idx, 1)
			}
		} else if onFire != nil {
			onFire(d.tag)
		}
	}
	if batched {
		n := out.Fired
		if out.UsedDefault {
			n++
		}
		if n > 0 {
			fired.AddAt(idx, int64(n))
		}
	}
	return out
}

// flatExecs is the compile-time selection table:
// [arity 0..5, any][void, result-fold][unguarded, guarded].
var flatExecs = [7][2][2]ExecFn{
	{
		{execFlat[arity0, resultVoid, unguarded], execFlat[arity0, resultVoid, guarded]},
		{execFlat[arity0, resultFold, unguarded], execFlat[arity0, resultFold, guarded]},
	},
	{
		{execFlat[arity1, resultVoid, unguarded], execFlat[arity1, resultVoid, guarded]},
		{execFlat[arity1, resultFold, unguarded], execFlat[arity1, resultFold, guarded]},
	},
	{
		{execFlat[arity2, resultVoid, unguarded], execFlat[arity2, resultVoid, guarded]},
		{execFlat[arity2, resultFold, unguarded], execFlat[arity2, resultFold, guarded]},
	},
	{
		{execFlat[arity3, resultVoid, unguarded], execFlat[arity3, resultVoid, guarded]},
		{execFlat[arity3, resultFold, unguarded], execFlat[arity3, resultFold, guarded]},
	},
	{
		{execFlat[arity4, resultVoid, unguarded], execFlat[arity4, resultVoid, guarded]},
		{execFlat[arity4, resultFold, unguarded], execFlat[arity4, resultFold, guarded]},
	},
	{
		{execFlat[arity5, resultVoid, unguarded], execFlat[arity5, resultVoid, guarded]},
		{execFlat[arity5, resultFold, unguarded], execFlat[arity5, resultFold, guarded]},
	},
	{
		{execFlat[arityAny, resultVoid, unguarded], execFlat[arityAny, resultVoid, guarded]},
		{execFlat[arityAny, resultFold, unguarded], execFlat[arityAny, resultFold, guarded]},
	},
}
