// Package codegen is the runtime-code-generation substrate of the SPIN
// event dispatcher reproduction (paper §3, "Implementation and
// performance").
//
// SPIN builds a specialized machine-code dispatch routine for every event
// with non-trivial bindings: the dispatch loop is unrolled over the handler
// list, small guards and handlers are inlined into the routine, and a
// peephole optimizer cleans up the generated code. Go cannot generate
// machine code at runtime, so this package reproduces the same structure
// one level up:
//
//   - "code generation" compiles the binding list into an immutable Plan —
//     a flattened ("unrolled") array of pre-resolved dispatch steps with no
//     per-raise allocation or list traversal;
//   - "inlining" executes guards and handlers written in a small predicate
//     and body DSL directly inside the dispatch routine, with no indirect
//     call (the Pred and Body types);
//   - "peephole optimization" simplifies the plan before publication:
//     constant-true guards are elided, constant-false guards eliminate
//     their binding entirely, boolean predicate trees are folded, and a
//     single unguarded synchronous binding collapses to a direct-call
//     bypass.
//
// The performance structure the paper measures — per-binding indirect-call
// cost versus much cheaper inlined evaluation, and O(n) plan regeneration
// per installation — is preserved; see DESIGN.md for the substitution
// rationale.
package codegen

import (
	"fmt"
	"sync/atomic"
)

// PredOp enumerates the predicate operators the code generator can inline.
// The set mirrors what SPIN's generator could splice into a dispatch stub:
// constant results, comparisons of a global cell or an argument word
// against a constant, and boolean combinations thereof.
type PredOp int

const (
	// PredTrue always passes. Peephole elides it from guard lists.
	PredTrue PredOp = iota
	// PredFalse never passes. Peephole removes the guarded binding.
	PredFalse
	// PredGlobalEq compares the word in Cell to K (Table 1's benchmark
	// guard: "compare a global variable to a constant and return true").
	PredGlobalEq
	// PredGlobalNe is the negated form of PredGlobalEq.
	PredGlobalNe
	// PredArgEq compares argument word Arg to K (the packet-filter shape:
	// "discriminate on the UDP or TCP port destination field").
	PredArgEq
	// PredArgNe is the negated form of PredArgEq.
	PredArgNe
	// PredArgLt passes when argument Arg is strictly below K.
	PredArgLt
	// PredAnd passes when both children pass.
	PredAnd
	// PredOr passes when either child passes.
	PredOr
	// PredNot negates its single child.
	PredNot
)

// Pred is an inlinable guard predicate. Guards expressed as a Pred are
// evaluated inside the generated dispatch routine without an indirect call;
// opaque function guards (codegen.Guard.Fn with a nil Pred) always dispatch
// indirectly.
type Pred struct {
	Op   PredOp
	Cell *atomic.Uint64 // PredGlobalEq/Ne
	Arg  int            // PredArgEq/Ne/Lt
	K    uint64
	L, R *Pred // PredAnd/Or (L,R), PredNot (L)
}

// Convenience constructors.

// True returns the always-true predicate.
func True() *Pred { return &Pred{Op: PredTrue} }

// False returns the always-false predicate.
func False() *Pred { return &Pred{Op: PredFalse} }

// GlobalEq builds cell == k.
func GlobalEq(cell *atomic.Uint64, k uint64) *Pred {
	return &Pred{Op: PredGlobalEq, Cell: cell, K: k}
}

// GlobalNe builds cell != k.
func GlobalNe(cell *atomic.Uint64, k uint64) *Pred {
	return &Pred{Op: PredGlobalNe, Cell: cell, K: k}
}

// ArgEq builds args[i] == k.
func ArgEq(i int, k uint64) *Pred { return &Pred{Op: PredArgEq, Arg: i, K: k} }

// ArgNe builds args[i] != k.
func ArgNe(i int, k uint64) *Pred { return &Pred{Op: PredArgNe, Arg: i, K: k} }

// ArgLt builds args[i] < k.
func ArgLt(i int, k uint64) *Pred { return &Pred{Op: PredArgLt, Arg: i, K: k} }

// And builds l && r.
func And(l, r *Pred) *Pred { return &Pred{Op: PredAnd, L: l, R: r} }

// Or builds l || r.
func Or(l, r *Pred) *Pred { return &Pred{Op: PredOr, L: l, R: r} }

// Not builds !p.
func Not(p *Pred) *Pred { return &Pred{Op: PredNot, L: p} }

// AsWord extracts a machine word from a raise argument. It accepts the
// integer kinds rtti maps to WORD. The second result reports success.
func AsWord(v any) (uint64, bool) {
	switch v := v.(type) {
	case uint64:
		return v, true
	case int:
		return uint64(v), true
	case uint:
		return uint64(v), true
	case int64:
		return uint64(v), true
	case int32:
		return uint64(v), true
	case uint32:
		return uint64(v), true
	case int16:
		return uint64(v), true
	case uint16:
		return uint64(v), true
	case int8:
		return uint64(v), true
	case uint8:
		return uint64(v), true
	case uintptr:
		return uint64(v), true
	}
	return 0, false
}

// Eval evaluates the predicate over the raise arguments. Out-of-range or
// non-word argument references evaluate to false rather than panicking:
// guards are untrusted extension code and must not crash the raiser.
func (p *Pred) Eval(args []any) bool {
	switch p.Op {
	case PredTrue:
		return true
	case PredFalse:
		return false
	case PredGlobalEq:
		return p.Cell != nil && p.Cell.Load() == p.K
	case PredGlobalNe:
		return p.Cell != nil && p.Cell.Load() != p.K
	case PredArgEq:
		w, ok := argWord(args, p.Arg)
		return ok && w == p.K
	case PredArgNe:
		w, ok := argWord(args, p.Arg)
		return ok && w != p.K
	case PredArgLt:
		w, ok := argWord(args, p.Arg)
		return ok && w < p.K
	case PredAnd:
		return p.L.Eval(args) && p.R.Eval(args)
	case PredOr:
		return p.L.Eval(args) || p.R.Eval(args)
	case PredNot:
		return !p.L.Eval(args)
	}
	return false
}

func argWord(args []any, i int) (uint64, bool) {
	if i < 0 || i >= len(args) {
		return 0, false
	}
	return AsWord(args[i])
}

// Simplify returns a peephole-simplified equivalent of p, folding constant
// subtrees: And(True,x)=x, Or(False,x)=x, Not(Not(x))=x, and so on. It
// never evaluates cells or arguments — only structurally constant facts
// fold, so a simplified predicate is observationally identical.
func (p *Pred) Simplify() *Pred {
	if p == nil {
		return nil
	}
	switch p.Op {
	case PredAnd:
		l, r := p.L.Simplify(), p.R.Simplify()
		switch {
		case l.Op == PredFalse || r.Op == PredFalse:
			return False()
		case l.Op == PredTrue:
			return r
		case r.Op == PredTrue:
			return l
		}
		return And(l, r)
	case PredOr:
		l, r := p.L.Simplify(), p.R.Simplify()
		switch {
		case l.Op == PredTrue || r.Op == PredTrue:
			return True()
		case l.Op == PredFalse:
			return r
		case r.Op == PredFalse:
			return l
		}
		return Or(l, r)
	case PredNot:
		l := p.L.Simplify()
		switch l.Op {
		case PredTrue:
			return False()
		case PredFalse:
			return True()
		case PredNot:
			return l.L
		}
		return Not(l)
	default:
		return p
	}
}

// String renders the predicate for diagnostics and plan disassembly.
func (p *Pred) String() string {
	if p == nil {
		return "<nil>"
	}
	switch p.Op {
	case PredTrue:
		return "true"
	case PredFalse:
		return "false"
	case PredGlobalEq:
		return fmt.Sprintf("*cell == %d", p.K)
	case PredGlobalNe:
		return fmt.Sprintf("*cell != %d", p.K)
	case PredArgEq:
		return fmt.Sprintf("arg%d == %d", p.Arg, p.K)
	case PredArgNe:
		return fmt.Sprintf("arg%d != %d", p.Arg, p.K)
	case PredArgLt:
		return fmt.Sprintf("arg%d < %d", p.Arg, p.K)
	case PredAnd:
		return fmt.Sprintf("(%s && %s)", p.L, p.R)
	case PredOr:
		return fmt.Sprintf("(%s || %s)", p.L, p.R)
	case PredNot:
		return fmt.Sprintf("!%s", p.L)
	}
	return "pred(?)"
}
