package codegen

import (
	"sync/atomic"
	"testing"

	"spin/internal/stripe"
	"spin/internal/trace"
)

// Differential fuzzing: the optimized compiled plan — peephole
// simplification, guard reordering, inline evaluation, the single-binding
// bypass, the decision tree, the flattened shape-specialized executors,
// and the traced twin routine — must fire exactly the same handlers, in
// the same order, as a naive reference model that walks the binding list
// evaluating every guard verbatim.

// fuzzReader decodes a fuzz input byte stream; exhausted streams yield
// zeros so every input is a complete (if boring) program.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// genPred decodes a bounded random predicate tree. The constants are drawn
// from a small domain so raises frequently match guards.
func genPred(r *fuzzReader, depth int, arity int, cell *atomic.Uint64) *Pred {
	op := r.byte() % 10
	if depth <= 0 && op >= 7 {
		op %= 7 // leaves only at the depth bound
	}
	argB := r.byte()
	arg := 0
	if arity > 0 {
		arg = int(argB) % arity
	} else if op >= 2 && op <= 4 {
		op = 5 + op%2 // arity 0 has no arguments: remap to global cells
	}
	k := uint64(r.byte() % 4)
	switch op {
	case 0:
		return True()
	case 1:
		return False()
	case 2:
		return ArgEq(arg, k)
	case 3:
		return ArgNe(arg, k)
	case 4:
		return ArgLt(arg, k)
	case 5:
		return GlobalEq(cell, k)
	case 6:
		return GlobalNe(cell, k)
	case 7:
		return And(genPred(r, depth-1, arity, cell), genPred(r, depth-1, arity, cell))
	case 8:
		return Or(genPred(r, depth-1, arity, cell), genPred(r, depth-1, arity, cell))
	default:
		return Not(genPred(r, depth-1, arity, cell))
	}
}

// genArgs decodes one raise argument vector of small words.
func genArgs(r *fuzzReader, arity int) []any {
	args := make([]any, arity)
	for i := range args {
		args[i] = uint64(r.byte() % 4)
	}
	return args
}

// FuzzPredCompile checks that peephole simplification preserves predicate
// semantics and that a plan compiled from a predicate-guarded binding fires
// exactly when naive evaluation of the original predicate passes.
func FuzzPredCompile(f *testing.F) {
	f.Add([]byte{7, 2, 1, 0, 8, 4, 2, 3, 9, 0, 1, 2, 3})
	f.Add([]byte{9, 9, 9, 1, 0, 0, 2, 2, 2})
	f.Add([]byte{2, 0, 1, 3, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		arity := int(r.byte() % 6) // 0..5: every specialized arity shape
		var cell atomic.Uint64
		cell.Store(uint64(r.byte() % 4))
		pred := genPred(r, 3, arity, &cell)

		// Property 1: Simplify is observationally identical.
		simplified := pred.Simplify()
		for trial := 0; trial < 4; trial++ {
			args := genArgs(r, arity)
			if got, want := simplified.Eval(args), pred.Eval(args); got != want {
				t.Fatalf("simplify changed semantics: %s -> %s on %v: %v != %v",
					pred, simplified, args, got, want)
			}
		}

		// Property 2: the compiled plan — which simplifies, reorders and
		// inlines the guard — fires iff the original predicate passes.
		fired := 0
		binding := &Binding{
			Guards: []Guard{{Pred: pred}},
			Fn:     func(any, []any) any { fired++; return nil },
			Name:   "fuzz.H",
		}
		for _, opts := range []Options{
			{},
			{DisableInline: true, DisableBypass: true},
			{DisablePeephole: true},
			{DisableSpecialize: true},
			{DisableShapeSpecialize: true},
		} {
			plan := Compile(EventInfo{Name: "Fuzz.Pred", Arity: arity},
				[]*Binding{binding}, nil, nil, opts)
			r2 := *r // same raises for every configuration
			for trial := 0; trial < 4; trial++ {
				args := genArgs(&r2, arity)
				fired = 0
				plan.Execute(&Env{}, args)
				want := 0
				if pred.Eval(args) {
					want = 1
				}
				if fired != want {
					t.Fatalf("opts %+v pred %s args %v: fired %d, want %d",
						opts, pred, args, fired, want)
				}
			}
		}
	})
}

// FuzzTreeDispatch compiles a random binding list under every optimizer
// configuration — including the decision tree, the flattened
// shape-specialized executors, and the traced routine — and checks each
// fires the same handler sequence as the reference model, merges results
// identically, and produces the same statistics totals through the
// per-fire and batched counting protocols.
func FuzzTreeDispatch(f *testing.F) {
	// A decision-tree-shaped seed: six consecutive ArgEq guards on arg 0.
	f.Add([]byte{0, 6, 1, 0, 1, 1, 0, 2, 1, 0, 3, 1, 0, 0, 1, 0, 1, 1, 0, 2, 0, 1, 2, 3})
	f.Add([]byte{1, 4, 0, 3, 1, 7, 2, 0, 5, 5, 2, 1, 1})
	f.Add([]byte{2, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		arity := int(r.byte() % 7) // 0..6: every arity shape plus arity-any
		n := 1 + int(r.byte()%10)
		hasResult := r.byte()%2 == 1
		foldResults := hasResult && r.byte()%2 == 1
		var cell atomic.Uint64
		cell.Store(uint64(r.byte() % 4))

		var fired []int
		preds := make([]*Pred, n) // reference model: nil = unguarded
		bindings := make([]*Binding, n)
		for i := 0; i < n; i++ {
			switch r.byte() % 4 {
			case 0: // unguarded
			case 3: // arbitrary predicate tree
				preds[i] = genPred(r, 2, arity, &cell)
			default: // ArgEq, biased so consecutive runs form decision trees
				argB := int(r.byte())
				k := uint64(r.byte() % 4)
				if arity == 0 {
					preds[i] = GlobalEq(&cell, k)
				} else {
					preds[i] = ArgEq(argB%arity, k)
				}
			}
			i := i
			bindings[i] = &Binding{
				Fn: func(any, []any) any {
					fired = append(fired, i)
					return uint64(i)
				},
				Name:      "fuzz.H",
				FireCount: new(stripe.Counter),
			}
			bindings[i].Tag = i
			if preds[i] != nil {
				bindings[i].Guards = []Guard{{Pred: preds[i]}}
			}
		}

		naive := func(args []any) []int {
			var out []int
			for i, p := range preds {
				if p == nil || p.Eval(args) {
					out = append(out, i)
				}
			}
			return out
		}

		var resultFn ResultFn
		if foldResults {
			resultFn = func(acc, res any, index int) any {
				if index == 0 {
					return res
				}
				return acc.(uint64) + res.(uint64)
			}
		}

		tracer := trace.New(trace.Config{Capacity: 64})
		info := EventInfo{Name: "Fuzz.Tree", Arity: arity, HasResult: hasResult}
		configs := []Options{
			{},
			{EnableDecisionTree: true},
			{DisableInline: true, DisableBypass: true, DisablePeephole: true},
			{EnableDecisionTree: true, Trace: tracer}, // traced twin routine
			{DisableSpecialize: true},                 // pure interpreter
			{DisableShapeSpecialize: true},            // flattened, generic shape
			{Trace: tracer},                           // sampling entry over flat-eligible plans
		}
		for trial := 0; trial < 4; trial++ {
			args := genArgs(r, arity)
			want := naive(args)
			for _, opts := range configs {
				plan := Compile(info, bindings, resultFn, nil, opts)
				fired = nil
				out := plan.Execute(&Env{}, args)
				if len(fired) != len(want) {
					t.Fatalf("opts %+v args %v: fired %v, model %v", opts, args, fired, want)
				}
				for i := range want {
					if fired[i] != want[i] {
						t.Fatalf("opts %+v args %v: order %v, model %v", opts, args, fired, want)
					}
				}
				if out.Fired != len(want) {
					t.Fatalf("opts %+v args %v: Outcome.Fired %d, model %d",
						opts, args, out.Fired, len(want))
				}
				if hasResult && len(want) > 0 {
					var wantRes uint64
					if foldResults {
						for _, i := range want {
							wantRes += uint64(i)
						}
					} else {
						wantRes = uint64(want[len(want)-1])
					}
					if got, ok := out.Result.(uint64); !ok || got != wantRes {
						t.Fatalf("opts %+v args %v: result %v, model %d",
							opts, args, out.Result, wantRes)
					}
					if wantAmb := !foldResults && len(want) > 1; out.Ambiguous != wantAmb {
						t.Fatalf("opts %+v args %v: ambiguous %v, model %v",
							opts, args, out.Ambiguous, wantAmb)
					}
				}

				// Statistics twins: the per-fire OnFire protocol must match
				// the model for every plan, and on specialized untraced plans
				// (the only ones that take the batched route) the batched
				// FireCount/FiredTotal protocol must produce the same totals.
				perFire := make([]int64, n)
				fired = nil
				plan.Execute(&Env{OnFire: func(tag any) {
					if i, ok := tag.(int); ok {
						perFire[i]++
					}
				}}, args)
				for i, got := range perFire {
					var wantN int64
					for _, w := range want {
						if w == i {
							wantN++
						}
					}
					if got != wantN {
						t.Fatalf("opts %+v args %v binding %d: per-fire %d, model %d",
							opts, args, i, got, wantN)
					}
				}
				if plan.Specialized() && opts.Trace == nil {
					before := make([]int64, n)
					for i, b := range bindings {
						before[i] = b.FireCount.Load()
					}
					var total stripe.Counter
					fired = nil
					plan.Execute(&Env{FiredTotal: &total}, args)
					if total.Load() != int64(len(want)) {
						t.Fatalf("opts %+v args %v: batched total %d, model %d",
							opts, args, total.Load(), len(want))
					}
					for i, b := range bindings {
						if batched := b.FireCount.Load() - before[i]; batched != perFire[i] {
							t.Fatalf("opts %+v args %v binding %d: per-fire %d, batched %d",
								opts, args, i, perFire[i], batched)
						}
					}
				}
			}
		}
	})
}

// FuzzBatchDispatch checks the batched executor tier against the same
// reference the single-raise fuzzers use: for a random binding list and a
// random frame stream, dispatching the stream as one unsplit batch, as a
// sequence of randomly split sub-batches, and as a loop of single Execute
// calls must fire the same handler sequence, fold the same outcome, and
// settle the same FireCount/FiredTotal statistics under every optimizer
// configuration.
func FuzzBatchDispatch(f *testing.F) {
	f.Add([]byte{1, 3, 0, 0, 1, 0, 1, 1, 0, 2, 8, 3, 1, 4, 0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{0, 6, 1, 0, 1, 1, 0, 2, 1, 0, 3, 1, 0, 0, 16, 0, 128, 2})
	f.Add([]byte{3, 2, 1, 1, 3, 9, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		arity := int(r.byte() % 6) // 0..5: the flat batch shapes
		n := 1 + int(r.byte()%8)
		hasResult := r.byte()%2 == 1
		foldResults := hasResult && r.byte()%2 == 1
		var cell atomic.Uint64
		cell.Store(uint64(r.byte() % 4))

		var fired []int
		preds := make([]*Pred, n)
		bindings := make([]*Binding, n)
		for i := 0; i < n; i++ {
			switch r.byte() % 4 {
			case 0: // unguarded
			case 3:
				preds[i] = genPred(r, 2, arity, &cell)
			default:
				argB := int(r.byte())
				k := uint64(r.byte() % 4)
				if arity == 0 {
					preds[i] = GlobalEq(&cell, k)
				} else {
					preds[i] = ArgEq(argB%arity, k)
				}
			}
			i := i
			bindings[i] = &Binding{
				Fn: func(any, []any) any {
					fired = append(fired, i)
					return uint64(i)
				},
				Name:      "fuzz.B",
				FireCount: new(stripe.Counter),
			}
			bindings[i].Tag = i
			if preds[i] != nil {
				bindings[i].Guards = []Guard{{Pred: preds[i]}}
			}
		}

		var resultFn ResultFn
		if foldResults {
			resultFn = func(acc, res any, index int) any {
				if index == 0 {
					return res
				}
				return acc.(uint64) + res.(uint64)
			}
		}

		// The frame stream and a set of random split points over it.
		nFrames := 1 + int(r.byte()%24)
		frames := make([]ArgFrame, nFrames)
		for i := range frames {
			frames[i] = genArgs(r, arity)
		}
		splits := []int{0}
		for at := 1 + int(r.byte()%4); at < nFrames; at += 1 + int(r.byte()%4) {
			splits = append(splits, at)
		}
		splits = append(splits, nFrames)

		// runBatch dispatches one frame span through ExecuteBatch, following
		// the continuation contract (with live == nil the executor must
		// consume every frame in one call, but the loop is the caller's
		// contract either way).
		runBatch := func(plan *Plan, env *Env, span []ArgFrame) BatchOutcome {
			var out BatchOutcome
			for len(span) > 0 {
				o, m := plan.ExecuteBatch(env, span, 0, nil)
				if m <= 0 {
					t.Fatalf("ExecuteBatch made no progress on %d frames", len(span))
				}
				out.Fired += o.Fired
				out.Defaulted += o.Defaulted
				out.NoHandler += o.NoHandler
				out.Ambiguous += o.Ambiguous
				out.Result = o.Result
				span = span[m:]
			}
			return out
		}

		// The env mirrors the dispatcher's: OnFire and FiredTotal land in the
		// SAME counters, so a path that takes the batched protocol (flat and
		// direct batch executors, flat single-raise) and a path that takes
		// the per-fire callback (interpreter, traced twin, direct single
		// raise) produce identical totals — which is exactly the equivalence
		// the dispatch layer depends on.
		mkEnv := func(total *stripe.Counter) *Env {
			return &Env{
				FiredTotal: total,
				OnFire: func(tag any) {
					total.Add(1)
					if i, ok := tag.(int); ok {
						bindings[i].FireCount.Add(1)
					}
				},
			}
		}

		tracer := trace.New(trace.Config{Capacity: 64})
		info := EventInfo{Name: "Fuzz.Batch", Arity: arity, HasResult: hasResult}
		configs := []Options{
			{},
			{EnableDecisionTree: true},
			{DisableInline: true, DisableBypass: true, DisablePeephole: true},
			{EnableDecisionTree: true, Trace: tracer},
			{DisableSpecialize: true},
			{DisableShapeSpecialize: true},
			{Trace: tracer},
		}
		for _, opts := range configs {
			plan := Compile(info, bindings, resultFn, nil, opts)

			// Reference: a loop of single raises, folded the way the batch
			// tier folds.
			var loopOut BatchOutcome
			fired = nil
			var loopTotal stripe.Counter
			loopBase := make([]int64, n)
			for i, b := range bindings {
				loopBase[i] = b.FireCount.Load()
			}
			for _, fr := range frames {
				loopOut.Add(plan.Execute(mkEnv(&loopTotal), fr))
			}
			loopFired := append([]int(nil), fired...)
			loopCounts := make([]int64, n)
			for i, b := range bindings {
				loopCounts[i] = b.FireCount.Load() - loopBase[i]
			}

			check := func(label string, out BatchOutcome, gotFired []int, total int64, counts []int64) {
				if len(gotFired) != len(loopFired) {
					t.Fatalf("opts %+v %s: fired %v, loop %v", opts, label, gotFired, loopFired)
				}
				for i := range loopFired {
					if gotFired[i] != loopFired[i] {
						t.Fatalf("opts %+v %s: order %v, loop %v", opts, label, gotFired, loopFired)
					}
				}
				if out != loopOut {
					t.Fatalf("opts %+v %s: outcome %+v, loop %+v", opts, label, out, loopOut)
				}
				if total != loopTotal.Load() {
					t.Fatalf("opts %+v %s: FiredTotal %d, loop %d", opts, label, total, loopTotal.Load())
				}
				for i := range counts {
					if counts[i] != loopCounts[i] {
						t.Fatalf("opts %+v %s binding %d: FireCount %d, loop %d",
							opts, label, i, counts[i], loopCounts[i])
					}
				}
			}

			// One unsplit batch.
			var total stripe.Counter
			base := make([]int64, n)
			for i, b := range bindings {
				base[i] = b.FireCount.Load()
			}
			fired = nil
			out := runBatch(plan, mkEnv(&total), frames)
			counts := make([]int64, n)
			for i, b := range bindings {
				counts[i] = b.FireCount.Load() - base[i]
			}
			check("unsplit", out, fired, total.Load(), counts)

			// The same stream as randomly split sub-batches.
			var splitTotal stripe.Counter
			for i, b := range bindings {
				base[i] = b.FireCount.Load()
			}
			fired = nil
			var splitOut BatchOutcome
			for s := 0; s+1 < len(splits); s++ {
				o := runBatch(plan, mkEnv(&splitTotal), frames[splits[s]:splits[s+1]])
				splitOut.Fired += o.Fired
				splitOut.Defaulted += o.Defaulted
				splitOut.NoHandler += o.NoHandler
				splitOut.Ambiguous += o.Ambiguous
				if splits[s+1] > splits[s] {
					splitOut.Result = o.Result
				}
			}
			for i, b := range bindings {
				counts[i] = b.FireCount.Load() - base[i]
			}
			check("split", splitOut, fired, splitTotal.Load(), counts)
		}
	})
}
