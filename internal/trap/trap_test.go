package trap

import (
	"errors"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

func newRig(t *testing.T) (*dispatch.Dispatcher, *Trap, *sched.Scheduler, *vtime.CPU) {
	t.Helper()
	var clock vtime.Clock
	cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
	d := dispatch.New(dispatch.WithCPU(cpu))
	tr, err := New(d, cpu)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(d, cpu, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, tr, s, cpu
}

var emuModule = rtti.NewModule("TestEmu")

func emuHandler(fn dispatch.HandlerFn) dispatch.Handler {
	return dispatch.Handler{
		Proc: &rtti.Proc{Name: "TestEmu.Syscall", Module: emuModule, Sig: SyscallSig},
		Fn:   fn,
	}
}

func isTaskGuard(want string) dispatch.Guard {
	return dispatch.Guard{
		Proc: &rtti.Proc{Name: "TestEmu.Guard", Module: emuModule, Functional: true,
			Sig: rtti.Sig(rtti.Bool, sched.StrandType, SavedStateType)},
		Fn: func(clo any, args []any) bool {
			st := args[0].(*sched.Strand)
			task, _ := st.Locals["task"].(string)
			return task == want
		},
	}
}

func TestUnhandledSyscallIsException(t *testing.T) {
	_, tr, s, _ := newRig(t)
	st := s.Spawn("init", 1, func(*sched.Strand) sched.Status { return sched.Done })
	err := tr.RaiseSyscall(st, &SavedState{V0: 1})
	if !errors.Is(err, dispatch.ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
}

func TestGuardedEmulatorsPartitionSyscalls(t *testing.T) {
	// Figure 2: the Mach emulator's guard ensures only system calls
	// raised for threads executing as part of Mach tasks reach it.
	_, tr, s, _ := newRig(t)
	var machCalls, osfCalls int
	if _, err := tr.Syscall.Install(emuHandler(func(clo any, args []any) any {
		machCalls++
		args[1].(*SavedState).Handled = true
		return nil
	}), dispatch.WithGuard(isTaskGuard("mach"))); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Syscall.Install(emuHandler(func(clo any, args []any) any {
		osfCalls++
		args[1].(*SavedState).Handled = true
		return nil
	}), dispatch.WithGuard(isTaskGuard("osf"))); err != nil {
		t.Fatal(err)
	}

	machStrand := s.Spawn("m", 1, func(*sched.Strand) sched.Status { return sched.Done })
	machStrand.Locals["task"] = "mach"
	osfStrand := s.Spawn("o", 2, func(*sched.Strand) sched.Status { return sched.Done })
	osfStrand.Locals["task"] = "osf"

	ms := &SavedState{V0: 65}
	if err := tr.RaiseSyscall(machStrand, ms); err != nil {
		t.Fatal(err)
	}
	if !ms.Handled {
		t.Fatal("state not marked handled")
	}
	if err := tr.RaiseSyscall(osfStrand, &SavedState{V0: 3}); err != nil {
		t.Fatal(err)
	}
	if machCalls != 1 || osfCalls != 1 {
		t.Fatalf("mach=%d osf=%d", machCalls, osfCalls)
	}
}

func TestSyscallChargesTrapCost(t *testing.T) {
	_, tr, s, cpu := newRig(t)
	_, _ = tr.Syscall.Install(emuHandler(func(any, []any) any { return nil }))
	st := s.Spawn("x", 1, func(*sched.Strand) sched.Status { return sched.Done })
	before := cpu.Now()
	if err := tr.RaiseSyscall(st, &SavedState{}); err != nil {
		t.Fatal(err)
	}
	us := vtime.InMicros(cpu.Now().Sub(before))
	// SyscallTrap (6us) + direct-call dispatch.
	if us < 6 || us > 7 {
		t.Fatalf("syscall cost = %.2fus", us)
	}
}

func TestInstallAuthorizer(t *testing.T) {
	_, tr, s, _ := newRig(t)
	if err := tr.InstallAuthorizer(func(req *dispatch.AuthRequest) bool {
		return req.Requestor == emuModule
	}); err != nil {
		t.Fatal(err)
	}
	// emuModule passes.
	if _, err := tr.Syscall.Install(emuHandler(func(any, []any) any { return nil })); err != nil {
		t.Fatal(err)
	}
	// A stranger is denied.
	stranger := dispatch.Handler{
		Proc: &rtti.Proc{Name: "X", Module: rtti.NewModule("X"), Sig: SyscallSig},
		Fn:   func(any, []any) any { return nil },
	}
	if _, err := tr.Syscall.Install(stranger); !errors.Is(err, dispatch.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	_ = s
}

func TestSavedStateRTTI(t *testing.T) {
	ms := &SavedState{}
	if ms.RTTIType() != SavedStateType {
		t.Fatal("RTTIType wrong")
	}
	if !SyscallSig.EqualTypes(rtti.Sig(nil, sched.StrandType, SavedStateType)) {
		t.Fatal("signature drifted")
	}
}
