// Package trap reproduces SPIN's MachineTrap module (paper §2.2): the
// machine-dependent trap handling code that exports system-call delivery
// as an event.
//
// "The kernel provides no native system call handling facilities. Instead,
// the MachineTrap module, which implements basic trap handling, exports an
// event Syscall through the MachineTrap interface." When a system call
// trap happens, the machine-dependent code saves the trapping thread's
// state and raises MachineTrap.Syscall; emulator extensions (internal/emu)
// install guarded handlers that recognise their own tasks.
package trap

import (
	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// Module is MachineTrap's module descriptor — the authority over the
// Syscall event (Figure 3).
var Module = rtti.NewModule("MachineTrap", "MachineTrap")

// SavedStateType is the rtti type of the saved machine state (the paper's
// MachineCPU.SavedState).
var SavedStateType = rtti.NewRef("MachineCPU.SavedState", nil)

// SyscallSig is the Syscall event's signature:
// (strand: Strand.T, ms: SavedState). Handlers mutate the state in place
// to deliver results, as the Modula-3 VAR parameter did.
var SyscallSig = rtti.Sig(nil, sched.StrandType, SavedStateType)

// SavedState is the saved register state of a trapping strand. V0 carries
// the system call number (the Alpha convention the paper's Figure 2 CASE
// statement switches on); A0..A5 carry arguments; Result and Errno are
// written by the handling emulator.
type SavedState struct {
	V0     uint64
	A      [6]uint64
	PC     uint64
	Result uint64
	Errno  uint64
	// Handled is set by an emulator that recognised the call; the trap
	// module uses it to decide whether the syscall found an owner.
	Handled bool
}

// RTTIType implements rtti.Described.
func (s *SavedState) RTTIType() rtti.Type { return SavedStateType }

// Trap is the machine trap module instance for one machine.
type Trap struct {
	cpu *vtime.CPU
	// Syscall is the MachineTrap.Syscall event.
	Syscall *dispatch.Event
}

// New defines the MachineTrap.Syscall event on d. The event has no
// intrinsic handler — the kernel provides no native system call service —
// but MachineTrap's module owns it, so only MachineTrap can install its
// authorizer.
func New(d *dispatch.Dispatcher, cpu *vtime.CPU) (*Trap, error) {
	ev, err := d.DefineEvent("MachineTrap.Syscall", SyscallSig, dispatch.WithOwner(Module))
	if err != nil {
		return nil, err
	}
	return &Trap{cpu: cpu, Syscall: ev}, nil
}

// RaiseSyscall simulates a system call trap: the machine-dependent cost of
// saving state and entering the kernel is charged, then the Syscall event
// is raised. The returned error is ErrNoHandler (wrapped) when no emulator
// claimed the call — an unhandled trap.
func (t *Trap) RaiseSyscall(st *sched.Strand, ms *SavedState) error {
	t.cpu.Charge(vtime.SyscallTrap)
	_, err := t.Syscall.Raise(st, ms)
	return err
}

// InstallAuthorizer installs an authorizer over the Syscall event on
// behalf of the MachineTrap module (Figure 3's
// Dispatcher.InstallAuthorizerForEvent(..., THIS_MODULE())).
func (t *Trap) InstallAuthorizer(fn dispatch.AuthorizerFn) error {
	return t.Syscall.InstallAuthorizer(fn, Module)
}
