// Package bench is the shared experiment harness: it reconstructs each of
// the paper's measurements (§3.1-3.2) against the virtual-time cost model,
// so cmd/spinbench, the root benchmark suite, and EXPERIMENTS.md all draw
// from the same code.
package bench

import (
	"fmt"
	"sync/atomic"

	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

var benchModule = rtti.NewModule("Bench")

// sigN builds a void signature with n WORD parameters, the shape Table 1
// sweeps over.
func sigN(n int) rtti.Signature {
	args := make([]rtti.Type, n)
	for i := range args {
		args[i] = rtti.Word
	}
	return rtti.Sig(nil, args...)
}

// newMeteredDispatcher returns a dispatcher wired to a fresh Alpha-model
// meter.
func newMeteredDispatcher(opts codegen.Options) (*dispatch.Dispatcher, *vtime.Clock) {
	clock := &vtime.Clock{}
	cpu := vtime.NewCPU(clock, vtime.AlphaModel())
	d := dispatch.New(dispatch.WithCPU(cpu), dispatch.WithCodegenOptions(opts))
	return d, clock
}

// wordArgs builds a raise argument vector of n words.
func wordArgs(n int) []any {
	args := make([]any, n)
	for i := range args {
		args[i] = uint64(i)
	}
	return args
}

// ProcCallLatency reconstructs Table 1's "Modula-3 procedure call" column:
// an event with only its intrinsic handler, dispatched as a direct call.
func ProcCallLatency(args int) (vtime.Duration, error) {
	d, clock := newMeteredDispatcher(codegen.Options{})
	ev, err := d.DefineEvent("Bench.Proc", sigN(args), dispatch.WithIntrinsic(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Bench.Proc", Module: benchModule, Sig: sigN(args)},
		Fn:   func(any, []any) any { return nil },
	}))
	if err != nil {
		return 0, err
	}
	av := wordArgs(args)
	before := clock.Now()
	if _, err := ev.Raise(av...); err != nil {
		return 0, err
	}
	return clock.Now().Sub(before), nil
}

// DispatchLatency reconstructs one Table 1 cell: the cost of raising an
// event with the given number of arguments and handlers. Guards compare a
// global variable to a constant and return true; handlers return without
// performing any work. inline selects whether the code generator may
// inline them.
func DispatchLatency(args, handlers int, inline bool) (vtime.Duration, error) {
	return dispatchLatencyOpts(args, handlers, inline, codegen.Options{DisableBypass: true})
}

// DispatchLatencyOptions is DispatchLatency with explicit generator
// options, for the ablation benchmarks.
func DispatchLatencyOptions(args, handlers int, inline bool, opts codegen.Options) (vtime.Duration, error) {
	return dispatchLatencyOpts(args, handlers, inline, opts)
}

func dispatchLatencyOpts(args, handlers int, inline bool, opts codegen.Options) (vtime.Duration, error) {
	d, clock := newMeteredDispatcher(opts)
	ev, err := d.DefineEvent("Bench.Event", sigN(args))
	if err != nil {
		return 0, err
	}
	var cell atomic.Uint64
	for i := 0; i < handlers; i++ {
		var h dispatch.Handler
		var g dispatch.Guard
		if inline {
			g = dispatch.Guard{Pred: codegen.GlobalEq(&cell, 0)}
			h = dispatch.Handler{
				Proc:   &rtti.Proc{Name: "Bench.H", Module: benchModule, Sig: sigN(args)},
				Inline: codegen.Nop(),
			}
		} else {
			g = dispatch.Guard{
				Proc: &rtti.Proc{Name: "Bench.G", Module: benchModule, Functional: true,
					Sig: rtti.Sig(rtti.Bool, sigN(args).Args...)},
				Fn: func(clo any, a []any) bool { return cell.Load() == 0 },
			}
			h = dispatch.Handler{
				Proc: &rtti.Proc{Name: "Bench.H", Module: benchModule, Sig: sigN(args)},
				Fn:   func(any, []any) any { return nil },
			}
		}
		if _, err := ev.Install(h, dispatch.WithGuard(g)); err != nil {
			return 0, err
		}
	}
	av := wordArgs(args)
	before := clock.Now()
	if _, err := ev.Raise(av...); err != nil {
		return 0, err
	}
	return clock.Now().Sub(before), nil
}

// Table1 regenerates the full Table 1 grid. The result maps
// [args][handlers] to {noInline, inline} in microseconds, plus the
// procedure-call column.
type Table1Result struct {
	Args     []int
	Handlers []int
	ProcCall map[int]float64    // args -> us
	NoInline map[[2]int]float64 // {args, handlers} -> us
	Inline   map[[2]int]float64 // {args, handlers} -> us
}

// Table1 runs the grid the paper reports: 0/1/5 arguments crossed with
// 1/5/10/50 handlers.
func Table1() (*Table1Result, error) {
	r := &Table1Result{
		Args:     []int{0, 1, 5},
		Handlers: []int{1, 5, 10, 50},
		ProcCall: map[int]float64{},
		NoInline: map[[2]int]float64{},
		Inline:   map[[2]int]float64{},
	}
	for _, a := range r.Args {
		d, err := ProcCallLatency(a)
		if err != nil {
			return nil, err
		}
		r.ProcCall[a] = vtime.InMicros(d)
		for _, h := range r.Handlers {
			ni, err := DispatchLatency(a, h, false)
			if err != nil {
				return nil, err
			}
			inl, err := DispatchLatency(a, h, true)
			if err != nil {
				return nil, err
			}
			r.NoInline[[2]int{a, h}] = vtime.InMicros(ni)
			r.Inline[[2]int{a, h}] = vtime.InMicros(inl)
		}
	}
	return r, nil
}

// InstallOverhead reconstructs §3.1 "Installation overhead": the cost of
// the first installation and the cumulative cost of installing n handlers
// on one event (quadratic, since each install regenerates the plan).
func InstallOverhead(n int) (first, total vtime.Duration, err error) {
	return installOverheadOpts(n, codegen.Options{})
}

// installOverheadOpts is InstallOverhead under explicit generator options
// (the incremental-installation comparison uses it).
func installOverheadOpts(n int, opts codegen.Options) (first, total vtime.Duration, err error) {
	d, clock := newMeteredDispatcher(opts)
	ev, err := d.DefineEvent("Bench.Install", sigN(0))
	if err != nil {
		return 0, 0, err
	}
	h := dispatch.Handler{
		Proc: &rtti.Proc{Name: "Bench.H", Module: benchModule, Sig: sigN(0)},
		Fn:   func(any, []any) any { return nil },
	}
	start := clock.Now()
	for i := 0; i < n; i++ {
		before := clock.Now()
		if _, err := ev.Install(h); err != nil {
			return 0, 0, err
		}
		if i == 0 {
			first = clock.Now().Sub(before)
		}
	}
	return first, clock.Now().Sub(start), nil
}

// AsyncOverhead reconstructs the §3.1 asynchronous-event measurement: the
// additional latency an asynchronous raise imposes on the raiser (thread
// creation), as a function of argument count.
func AsyncOverhead(args int) (vtime.Duration, error) {
	clock := &vtime.Clock{}
	cpu := vtime.NewCPU(clock, vtime.AlphaModel())
	sim := vtime.NewSimulator(clock)
	d := dispatch.New(dispatch.WithCPU(cpu), dispatch.WithSimulator(sim))
	ev, err := d.DefineEvent("Bench.Async", sigN(args))
	if err != nil {
		return 0, err
	}
	if _, err := ev.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Bench.H", Module: benchModule, Sig: sigN(args)},
		Fn:   func(any, []any) any { return nil },
	}); err != nil {
		return 0, err
	}
	av := wordArgs(args)
	before := clock.Now()
	if err := ev.RaiseAsync(av...); err != nil {
		return 0, err
	}
	latency := clock.Now().Sub(before)
	sim.Run(0) // let the detached handler run
	return latency, nil
}

// EchoRig is the Table 2 experiment: two machines on a 10 Mb/s Ethernet
// exchanging 8-byte UDP datagrams, with additional always-false guards
// installed on both machines' Udp.PacketArrived events.
type EchoRig struct {
	A, B   *kernel.Machine
	SA, SB *netstack.Stack
	client *netstack.UDPSocket
	server *netstack.UDPSocket

	rtt    vtime.Duration
	replyD bool
}

// NewEchoRig builds the two-machine echo setup with extraGuards inactive
// endpoints per machine ("the experiment has one active endpoint and many
// inactive ones, yet all guards are evaluated for each packet").
func NewEchoRig(extraGuards int) (*EchoRig, error) {
	return newEchoRig(extraGuards, false)
}

// NewEchoRigOptimized is the same setup with inline predicate port guards
// and the decision-tree generator enabled — the configuration the paper's
// future-work paragraph predicts "would be effective for the port
// comparison required by this example".
func NewEchoRigOptimized(extraGuards int) (*EchoRig, error) {
	return newEchoRig(extraGuards, true)
}

func newEchoRig(extraGuards int, optimized bool) (*EchoRig, error) {
	var cg codegen.Options
	if optimized {
		cg.EnableDecisionTree = true
	}
	a, err := kernel.Boot(kernel.Config{Name: "a", Metered: true, Codegen: cg})
	if err != nil {
		return nil, err
	}
	b, err := kernel.Boot(kernel.Config{Name: "b", ShareWith: a, Codegen: cg})
	if err != nil {
		return nil, err
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, err := link.Attach("mac-a")
	if err != nil {
		return nil, err
	}
	nicB, err := link.Attach("mac-b")
	if err != nil {
		return nil, err
	}
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp,
		InlinePortGuards: optimized})
	if err != nil {
		return nil, err
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:",
		InlinePortGuards: optimized})
	if err != nil {
		return nil, err
	}
	r := &EchoRig{A: a, B: b, SA: sa, SB: sb}

	// The inactive endpoints: handlers whose guards discriminate on
	// ports nobody sends to, so they evaluate to false on every packet.
	pktSig := rtti.Sig(nil, rtti.Word, netstack.PacketType)
	for _, s := range []*netstack.Stack{sa, sb} {
		for i := 0; i < extraGuards; i++ {
			port := uint16(40000 + i)
			_, err := s.UDPArrived.Install(dispatch.Handler{
				Proc: &rtti.Proc{Name: fmt.Sprintf("Bench.Inactive%d", i),
					Module: benchModule, Sig: pktSig},
				Fn: func(any, []any) any { return nil },
			}, dispatch.WithGuard(s.PortGuard("Bench.InactiveGuard", port)))
			if err != nil {
				return nil, err
			}
		}
	}

	if r.client, err = sa.BindUDP(5000); err != nil {
		return nil, err
	}
	if r.server, err = sb.BindUDP(7); err != nil {
		return nil, err
	}

	// Echo server strand on B.
	b.Sched.Spawn("echo", 1, func(st *sched.Strand) sched.Status {
		for {
			pkt, ok := r.server.Recv()
			if !ok {
				break
			}
			_ = r.server.Send(pkt.SrcIP, pkt.SrcPort, pkt.Payload)
		}
		r.server.AwaitPacket(st)
		return sched.Block
	})
	// Client strand on A records the roundtrip.
	a.Sched.Spawn("client", 1, func(st *sched.Strand) sched.Status {
		if _, ok := r.client.Recv(); ok {
			r.replyD = true
			return sched.Done
		}
		r.client.AwaitPacket(st)
		return sched.Block
	})
	a.Sim.Run(0) // settle the spawn pumps
	return r, nil
}

// Roundtrip sends one 8-byte datagram and runs the simulation until the
// reply returns, reporting the roundtrip latency.
func (r *EchoRig) Roundtrip() (vtime.Duration, error) {
	r.replyD = false
	start := r.A.Clock.Now()
	if err := r.client.Send("10.0.0.2", 7, []byte("12345678")); err != nil {
		return 0, err
	}
	r.A.Sim.Run(2_000_000)
	if !r.replyD {
		return 0, fmt.Errorf("bench: echo reply never arrived")
	}
	return r.A.Clock.Now().Sub(start), nil
}

// Table2Roundtrip measures the UDP roundtrip with the given total number of
// guards on the packet event (1 active + guards-1 inactive), reproducing
// Table 2.
func Table2Roundtrip(guards int) (vtime.Duration, error) {
	if guards < 1 {
		guards = 1
	}
	rig, err := NewEchoRig(guards - 1)
	if err != nil {
		return 0, err
	}
	// Discard a warm-up trip (the client strand's Done state machine is
	// one-shot, so re-arm via a fresh rig per measurement instead).
	return rig.Roundtrip()
}

// Table2RoundtripOptimized is Table2Roundtrip under the decision-tree
// generator with inline port guards: the per-guard slope collapses.
func Table2RoundtripOptimized(guards int) (vtime.Duration, error) {
	if guards < 1 {
		guards = 1
	}
	rig, err := NewEchoRigOptimized(guards - 1)
	if err != nil {
		return 0, err
	}
	return rig.Roundtrip()
}

// MicroOverhead reconstructs the §3.1 claim that event processing adds
// 10-15% to basic system services. It measures a null system call through
// the Table 3 dispatcher population (three handlers, two guards) against
// the same operation bound directly, and likewise a scheduler context
// switch with Strand.Run's population (four handlers, three guards)
// against a bare switch.
type MicroResult struct {
	SyscallDirect, SyscallEvented vtime.Duration
	ThreadDirect, ThreadEvented   vtime.Duration
}

// SyscallOverheadPct returns the relative event overhead on the syscall
// path in percent.
func (m *MicroResult) SyscallOverheadPct() float64 {
	return 100 * float64(m.SyscallEvented-m.SyscallDirect) / float64(m.SyscallDirect)
}

// ThreadOverheadPct returns the relative event overhead on the scheduling
// path in percent.
func (m *MicroResult) ThreadOverheadPct() float64 {
	return 100 * float64(m.ThreadEvented-m.ThreadDirect) / float64(m.ThreadDirect)
}

// Micro runs both microbenchmarks.
func Micro() (*MicroResult, error) {
	out := &MicroResult{}

	// Null system call, direct: trap entry plus one direct call.
	{
		clock := &vtime.Clock{}
		cpu := vtime.NewCPU(clock, vtime.AlphaModel())
		before := clock.Now()
		cpu.Charge(vtime.SyscallTrap)
		cpu.Charge(vtime.CallDirect)
		cpu.ChargeN(vtime.CallDirectArg, 2)
		out.SyscallDirect = clock.Now().Sub(before)
	}
	// Null system call, evented: trap entry plus the MachineTrap.Syscall
	// dispatch with Table 3's population (3 handlers, 2 guards; one
	// guard admits the caller).
	{
		d, clock := newMeteredDispatcher(codegen.Options{})
		cpu := d.CPU()
		sig := sigN(2)
		ev, err := d.DefineEvent("Bench.Syscall", sig)
		if err != nil {
			return nil, err
		}
		admit := dispatch.Guard{
			Proc: &rtti.Proc{Name: "Bench.Admit", Module: benchModule, Functional: true,
				Sig: rtti.Sig(rtti.Bool, sig.Args...)},
			Fn: func(any, []any) bool { return true },
		}
		reject := dispatch.Guard{
			Proc: &rtti.Proc{Name: "Bench.Reject", Module: benchModule, Functional: true,
				Sig: rtti.Sig(rtti.Bool, sig.Args...)},
			Fn: func(any, []any) bool { return false },
		}
		nullH := dispatch.Handler{
			Proc: &rtti.Proc{Name: "Bench.Null", Module: benchModule, Sig: sig},
			Fn:   func(any, []any) any { return nil },
		}
		if _, err := ev.Install(nullH, dispatch.WithGuard(admit)); err != nil {
			return nil, err
		}
		if _, err := ev.Install(nullH, dispatch.WithGuard(reject)); err != nil {
			return nil, err
		}
		if _, err := ev.Install(nullH); err != nil { // unguarded tracer
			return nil, err
		}
		before := clock.Now()
		cpu.Charge(vtime.SyscallTrap)
		if _, err := ev.Raise(uint64(1), uint64(2)); err != nil {
			return nil, err
		}
		out.SyscallEvented = clock.Now().Sub(before)
	}

	// Context switch, direct: the switch cost plus a direct call.
	{
		clock := &vtime.Clock{}
		cpu := vtime.NewCPU(clock, vtime.AlphaModel())
		before := clock.Now()
		cpu.Charge(vtime.ContextSwitch)
		cpu.Charge(vtime.CallDirect)
		cpu.ChargeN(vtime.CallDirectArg, 2)
		out.ThreadDirect = clock.Now().Sub(before)
	}
	// Context switch, evented: Strand.Run with 4 handlers, 3 guards.
	{
		d, clock := newMeteredDispatcher(codegen.Options{})
		cpu := d.CPU()
		sig := sigN(2)
		ev, err := d.DefineEvent("Bench.Run", sig, dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Bench.Run", Module: benchModule, Sig: sig},
			Fn:   func(any, []any) any { return nil },
		}))
		if err != nil {
			return nil, err
		}
		h := dispatch.Handler{
			Proc: &rtti.Proc{Name: "Bench.Switch", Module: benchModule, Sig: sig},
			Fn:   func(any, []any) any { return nil },
		}
		g := dispatch.Guard{
			Proc: &rtti.Proc{Name: "Bench.SwitchG", Module: benchModule, Functional: true,
				Sig: rtti.Sig(rtti.Bool, sig.Args...)},
			Fn: func(any, []any) bool { return true },
		}
		for i := 0; i < 3; i++ {
			if _, err := ev.Install(h, dispatch.WithGuard(g)); err != nil {
				return nil, err
			}
		}
		before := clock.Now()
		cpu.Charge(vtime.ContextSwitch)
		if _, err := ev.Raise(uint64(1), uint64(2)); err != nil {
			return nil, err
		}
		out.ThreadEvented = clock.Now().Sub(before)
	}
	return out, nil
}
