package bench

import (
	"testing"

	"spin/internal/codegen"
	"spin/internal/vtime"
)

// near asserts a measured microsecond value lies within tolPct of the
// paper's value.
func near(t *testing.T, what string, got, paper, tolPct float64) {
	t.Helper()
	lo := paper * (1 - tolPct/100)
	hi := paper * (1 + tolPct/100)
	if got < lo || got > hi {
		t.Errorf("%s = %.3fus, paper %.2fus (+-%.0f%%)", what, got, paper, tolPct)
	}
}

// TestTable1MatchesPaper pins the full Table 1 grid against the paper's
// values within 20% (the paper's own cells carry measurement noise; e.g.
// the 5-arg inline column is non-monotone between 5 and 10 handlers).
func TestTable1MatchesPaper(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	paperProc := map[int]float64{0: 0.10, 1: 0.13, 5: 0.14}
	paperNoInline := map[[2]int]float64{
		{0, 1}: 0.37, {0, 5}: 1.18, {0, 10}: 2.15, {0, 50}: 11.69,
		{1, 1}: 0.39, {1, 5}: 1.25, {1, 10}: 2.32, {1, 50}: 11.51,
		{5, 1}: 0.97, {5, 5}: 1.61, {5, 10}: 2.88, {5, 50}: 14.45,
	}
	paperInline := map[[2]int]float64{
		{0, 1}: 0.23, {0, 5}: 0.41, {0, 10}: 0.63, {0, 50}: 2.48,
		{1, 1}: 0.24, {1, 5}: 0.45, {1, 10}: 0.72, {1, 50}: 2.87,
		{5, 1}: 0.42, {5, 10}: 1.32, {5, 50}: 5.65,
		// {5,5} is 1.55 in the paper, an outlier above its own 10-handler
		// cell; the model cannot (and should not) reproduce noise.
	}
	// The model is the linear fit to each row; two of the paper's cells
	// sit well off their own row's linear trend ({1,1} against the 1-arg
	// slope, {5,5} against the 5-arg intercept+slope), so they carry a
	// wider band.
	wideTol := map[[2]int]bool{{1, 1}: true, {5, 5}: true}
	for a, want := range paperProc {
		near(t, "proc call", r.ProcCall[a], want, 30)
	}
	for k, want := range paperNoInline {
		tol := 20.0
		if wideTol[k] {
			tol = 35
		}
		near(t, "no-inline", r.NoInline[k], want, tol)
	}
	for k, want := range paperInline {
		near(t, "inline", r.Inline[k], want, 20)
	}
}

// TestTable1Shape verifies the structural claims independent of absolute
// calibration: linear growth with handler count, inline beating no-inline,
// and the intrinsic case sitting at procedure-call cost.
func TestTable1Shape(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.Args {
		// Monotone in handlers, and roughly linear: cost(50)/cost(10)
		// should be close to the handler ratio for the no-inline case.
		if r.NoInline[[2]int{a, 50}] <= r.NoInline[[2]int{a, 10}] {
			t.Errorf("args=%d: no-inline not monotone", a)
		}
		for _, h := range r.Handlers {
			ni := r.NoInline[[2]int{a, h}]
			inl := r.Inline[[2]int{a, h}]
			if inl >= ni {
				t.Errorf("args=%d handlers=%d: inline (%.2f) not cheaper than no-inline (%.2f)",
					a, h, inl, ni)
			}
			if r.ProcCall[a] >= ni {
				t.Errorf("args=%d: procedure call costlier than dispatch", a)
			}
		}
		// Slope check: per-handler increment ~ (cost(50)-cost(1))/49
		// must be within a factor of the model's indirect pair cost.
		slope := (r.NoInline[[2]int{a, 50}] - r.NoInline[[2]int{a, 1}]) / 49
		if slope < 0.15 || slope > 0.35 {
			t.Errorf("args=%d: no-inline slope %.3fus/handler, want ~0.23", a, slope)
		}
	}
}

func TestInstallOverheadMatchesPaper(t *testing.T) {
	first, total, err := InstallOverhead(100)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~150us for one install, ~30ms for 100 on the same event.
	near(t, "first install", vtime.InMicros(first), 150, 15)
	near(t, "100 installs", vtime.InMicros(total)/1000, 30, 15) // ms
	// Quadratic growth: 100 installs cost much more than 100x the first.
	if total < 150*first/2 {
		t.Errorf("install cost not superlinear: first=%v total=%v", first, total)
	}
}

func TestAsyncOverheadMatchesPaper(t *testing.T) {
	// Paper: 38-90us additional latency per asynchronous raise.
	for _, args := range []int{0, 1, 5} {
		d, err := AsyncOverhead(args)
		if err != nil {
			t.Fatal(err)
		}
		us := vtime.InMicros(d)
		if us < 38 || us > 90 {
			t.Errorf("async overhead args=%d: %.1fus outside [38,90]", args, us)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	paper := map[int]float64{1: 475, 5: 481, 10: 487, 50: 530}
	var base float64
	for _, guards := range []int{1, 5, 10, 50} {
		rt, err := Table2Roundtrip(guards)
		if err != nil {
			t.Fatal(err)
		}
		us := vtime.InMicros(rt)
		near(t, "udp roundtrip", us, paper[guards], 12)
		if guards == 1 {
			base = us
		} else if us <= base {
			t.Errorf("roundtrip with %d guards (%.0fus) not above the 1-guard base (%.0fus)",
				guards, us, base)
		}
	}
}

func TestTable2Slope(t *testing.T) {
	// Each additional guard adds ~1.12us to the roundtrip.
	rt1, err := Table2Roundtrip(1)
	if err != nil {
		t.Fatal(err)
	}
	rt50, err := Table2Roundtrip(50)
	if err != nil {
		t.Fatal(err)
	}
	slope := (vtime.InMicros(rt50) - vtime.InMicros(rt1)) / 49
	if slope < 0.8 || slope > 1.5 {
		t.Errorf("per-guard slope = %.2fus, paper ~1.12us", slope)
	}
}

func TestMicroOverheadBand(t *testing.T) {
	m, err := Micro()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "event processing overhead ... on the order of 10-15% for
	// operations such as system call and thread management."
	if pct := m.SyscallOverheadPct(); pct < 5 || pct > 25 {
		t.Errorf("syscall overhead = %.1f%%, paper 10-15%%", pct)
	}
	if pct := m.ThreadOverheadPct(); pct < 5 || pct > 25 {
		t.Errorf("thread overhead = %.1f%%, paper 10-15%%", pct)
	}
	t.Logf("syscall: %.1f%% (direct %v evented %v), thread: %.1f%%",
		m.SyscallOverheadPct(), m.SyscallDirect, m.SyscallEvented, m.ThreadOverheadPct())
}

// TestAblationBypass quantifies design decision 1 from DESIGN.md: without
// the single-handler bypass, the intrinsic-only case pays dispatch-entry
// cost instead of a bare procedure call.
func TestAblationBypass(t *testing.T) {
	with, err := ProcCallLatency(0)
	if err != nil {
		t.Fatal(err)
	}
	without, err := DispatchLatencyOptions(0, 1, false, codegen.Options{DisableBypass: true})
	if err != nil {
		t.Fatal(err)
	}
	if without <= with {
		t.Errorf("bypass ablation: dispatch (%v) should cost more than direct call (%v)", without, with)
	}
	ratio := float64(without) / float64(with)
	if ratio < 2 {
		t.Errorf("bypass saves less than 2x (%.1fx); Table 1 implies ~3.7x", ratio)
	}
}

// TestAblationInline quantifies design decision 2: disabling inlining on
// an inlinable population falls back to indirect-call cost.
func TestAblationInline(t *testing.T) {
	inline, err := DispatchLatency(0, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	noInline, err := DispatchLatency(0, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(noInline) / float64(inline)
	// Paper: 11.69 vs 2.48 at 50 handlers ~ 4.7x.
	if ratio < 3 || ratio > 7 {
		t.Errorf("inline advantage = %.1fx, paper ~4.7x", ratio)
	}
}

// TestTable2DecisionTreeFlattensSlope verifies the paper's future-work
// prediction: with the guard decision tree (and inline port guards), the
// per-guard cost of Table 2's experiment disappears — roundtrip latency is
// essentially flat from 1 to 50 endpoints.
func TestTable2DecisionTreeFlattensSlope(t *testing.T) {
	rt1, err := Table2RoundtripOptimized(1)
	if err != nil {
		t.Fatal(err)
	}
	rt50, err := Table2RoundtripOptimized(50)
	if err != nil {
		t.Fatal(err)
	}
	slope := (vtime.InMicros(rt50) - vtime.InMicros(rt1)) / 49
	if slope > 0.05 {
		t.Errorf("optimized per-guard slope = %.3fus, want ~0 (linear scan: ~1.12)", slope)
	}
	// And the optimized 50-guard case beats the unoptimized one by
	// roughly the 49 * 1.12us the guards used to cost.
	lin50, err := Table2Roundtrip(50)
	if err != nil {
		t.Fatal(err)
	}
	saved := vtime.InMicros(lin50) - vtime.InMicros(rt50)
	if saved < 30 {
		t.Errorf("decision tree saved only %.1fus at 50 guards, want ~50", saved)
	}
	t.Logf("optimized: 1 guard %.1fus, 50 guards %.1fus (linear 50: %.1fus)",
		vtime.InMicros(rt1), vtime.InMicros(rt50), vtime.InMicros(lin50))
}

// TestIncrementalInstallLinearizesCost verifies the other future-work
// item: with IncrementalInstall, n installations cost O(n) instead of
// O(n^2) — 100 handlers go in for ~100x the single-install cost instead
// of ~200x.
func TestIncrementalInstallLinearizesCost(t *testing.T) {
	quadFirst, quadTotal, err := InstallOverhead(100)
	if err != nil {
		t.Fatal(err)
	}
	incrFirst, incrTotal, err := installOverheadOpts(100, codegen.Options{IncrementalInstall: true})
	if err != nil {
		t.Fatal(err)
	}
	if vtime.InMicros(incrFirst) > vtime.InMicros(quadFirst) {
		t.Errorf("incremental first install costs more: %v vs %v", incrFirst, quadFirst)
	}
	// Incremental total = 100 * base = ~15ms; quadratic = ~30ms.
	incrMS := vtime.InMicros(incrTotal) / 1000
	quadMS := vtime.InMicros(quadTotal) / 1000
	if incrMS > quadMS*0.6 {
		t.Errorf("incremental total %.1fms not well under quadratic %.1fms", incrMS, quadMS)
	}
	// And it is linear: total ~= n * first.
	ratio := float64(incrTotal) / float64(incrFirst)
	if ratio < 90 || ratio > 110 {
		t.Errorf("incremental cost not linear: total/first = %.0f, want ~100", ratio)
	}
}
