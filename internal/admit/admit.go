// Package admit is the dispatcher's overload-control subsystem: bounded
// admission queues, a size-capped worker pool, and a load-level degradation
// controller.
//
// The paper keeps dispatch at procedure-call cost but leaves asynchronous
// raises unbounded: every async invocation gets a fresh thread of control,
// so a burst of raises can exhaust memory before any per-handler fault
// budget notices. This package moves the concurrency limit into the binding
// layer, where the dispatcher — not each extension — owns it: asynchronous
// work is submitted to a per-event bounded Queue drained by a shared Pool
// whose worker population is capped, and a pluggable Policy decides what
// happens when the queue is full (block the producer, shed the newest or
// oldest raise, or coalesce duplicate pending raises).
//
// The package is mechanism-free in the same sense internal/fault is: it
// knows nothing about events, bindings, or plans. The dispatcher compiles a
// queue reference into an event's dispatch plan exactly the way trace
// programs and fault hooks are compiled in, so an event with no admission
// policy pays one nil check per async step and nothing else.
package admit

import (
	"errors"
	"fmt"
	"time"
)

// Mode selects what Submit does when the queue is at capacity.
type Mode uint8

const (
	// Block makes the producer wait for space, bounded by the policy's
	// BlockTimeout (and the submission context). A timeout sheds the
	// submission.
	Block Mode = iota
	// Shed rejects the newest submission with ErrOverload, leaving the
	// queued backlog intact — the classic tail-drop policy.
	Shed
	// ShedOldest drops the oldest queued item to admit the newest, for
	// workloads where fresh raises supersede stale ones.
	ShedOldest
	// Coalesce merges a submission with a pending item carrying the same
	// key (idempotent notifications): the pending run stands for both.
	// With no pending duplicate and the queue full, the submission is
	// shed as in Shed.
	Coalesce
)

func (m Mode) String() string {
	switch m {
	case Block:
		return "block"
	case Shed:
		return "shed"
	case ShedOldest:
		return "shed-oldest"
	case Coalesce:
		return "coalesce"
	}
	return "mode(?)"
}

// DefaultDepth is the queue capacity a zero Policy.Depth selects.
const DefaultDepth = 64

// Policy is one event's admission policy.
type Policy struct {
	// Mode selects the full-queue behaviour.
	Mode Mode
	// Depth bounds the number of pending admitted items; zero selects
	// DefaultDepth.
	Depth int
	// BlockTimeout bounds how long a Block-mode producer waits for space;
	// zero waits until space frees (or the submission context ends).
	BlockTimeout time.Duration
	// Retry is the maximum number of times a transiently failing run is
	// requeued (with jittered exponential backoff) before giving up; zero
	// disables retry.
	Retry int
	// RetryBackoff is the first retry delay; zero selects 5ms.
	RetryBackoff time.Duration
	// RetryFactor multiplies the delay per attempt; values below 2 select 2.
	RetryFactor int
	// MaxRetryBackoff caps the delay; zero selects 1s.
	MaxRetryBackoff time.Duration
}

// depth returns the effective queue capacity.
func (p Policy) depth() int {
	if p.Depth > 0 {
		return p.Depth
	}
	return DefaultDepth
}

// Backoff returns the jittered exponential retry delay for the given
// attempt (1-based). rand supplies the jitter source (a word of entropy);
// the delay lands in [d/2, d] so retries from a burst of failures spread
// out instead of stampeding back in lockstep.
func (p Policy) Backoff(attempt int, rand uint64) time.Duration {
	base := p.RetryBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	factor := p.RetryFactor
	if factor < 2 {
		factor = 2
	}
	maxd := p.MaxRetryBackoff
	if maxd <= 0 {
		maxd = time.Second
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= time.Duration(factor)
		if d >= maxd {
			d = maxd
			break
		}
	}
	if d > maxd {
		d = maxd
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand%uint64(half+1))
}

// ErrOverload is the sentinel every shed submission wraps; raisers test for
// it with errors.Is.
var ErrOverload = errors.New("admit: overloaded, submission shed")

// OverloadError is the typed error a shed submission returns: the queue's
// name (the event), the policy mode that shed it, and the depth at the time.
type OverloadError struct {
	Queue string
	Mode  Mode
	Depth int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("admit: %s overloaded (%s, depth %d)", e.Queue, e.Mode, e.Depth)
}

// Is makes errors.Is(err, ErrOverload) hold for every OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// QueueStats is a consistent snapshot of one queue's accounting. Every
// submission ends in exactly one of completed, shed, or coalesced (or is
// still pending), so Submitted == Completed + Shed + Coalesced + Depth once
// the queue drains.
type QueueStats struct {
	// Submitted counts external submissions, including ones that were
	// shed or coalesced.
	Submitted int64
	// Completed counts admitted items whose run reached a final outcome
	// (including runs that failed after exhausting retries).
	Completed int64
	// Shed counts submissions rejected or dropped: Shed-mode rejections,
	// ShedOldest drops, and Block-mode timeouts.
	Shed int64
	// Coalesced counts submissions merged into a pending duplicate.
	Coalesced int64
	// Retried counts requeues of transiently failed runs (not new
	// submissions); Retrying is the number currently waiting out a retry
	// backoff (still charged to the queue).
	Retried  int64
	Retrying int
	// Depth is the current number of pending items; MaxDepth the high
	// watermark.
	Depth    int
	MaxDepth int
	// InFlight counts items a worker has taken but not yet settled.
	InFlight int
}

// Drained reports whether every submission has reached a final outcome.
func (s QueueStats) Drained() bool {
	return s.Depth == 0 && s.InFlight == 0 && s.Retrying == 0
}

// Add returns the element-wise sum of two snapshots. The shard router uses
// it to aggregate per-shard admission ledgers into one plane-wide view;
// MaxDepth takes the larger watermark since depths on different queues
// never stack.
func (s QueueStats) Add(o QueueStats) QueueStats {
	s.Submitted += o.Submitted
	s.Completed += o.Completed
	s.Shed += o.Shed
	s.Coalesced += o.Coalesced
	s.Retried += o.Retried
	s.Retrying += o.Retrying
	s.Depth += o.Depth
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	s.InFlight += o.InFlight
	return s
}

// Identity reports the ledger conservation law: every submission is
// completed, shed, coalesced, or still in the machine (queued, in flight,
// or waiting out a retry backoff). On a drained queue it reduces to
// Submitted == Completed + Shed + Coalesced. It holds per queue and, since
// Add is a sum of disjoint ledgers, across any aggregation of them — the
// per-shard invariant `make shardcheck` enforces.
func (s QueueStats) Identity() bool {
	return s.Submitted == s.Completed+s.Shed+s.Coalesced+
		int64(s.Depth)+int64(s.InFlight)+int64(s.Retrying)
}

// PoolStats is a snapshot of the worker pool.
type PoolStats struct {
	// Capacity is the configured worker cap; Extra the additional
	// headroom from currently abandoned (stuck) invocations.
	Capacity int
	Extra    int
	// Running counts live workers (including parked ones); Parked the
	// subset waiting for work.
	Running int
	Parked  int
	// Abandoned is the total number of invocations ever abandoned to a
	// watchdog while holding a worker.
	Abandoned int64
}
