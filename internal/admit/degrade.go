package admit

// Level is one rung of the degradation ladder. A level is entered when
// either threshold (the ones set above zero) is crossed; bindings whose
// priority class is MinPriority or higher are disabled while the level is
// active.
type Level struct {
	// Name labels the level in trace spans and stats.
	Name string
	// QueueDepth enters the level when the aggregate pending depth across
	// all admission queues reaches it (0 disables the trigger).
	QueueDepth int
	// ShedRate enters the level when the shed fraction over the
	// observation window reaches it (0 disables the trigger).
	ShedRate float64
	// MinPriority is the lowest priority class disabled at this level.
	// Priority 0 is essential and never disabled; higher numbers are more
	// optional.
	MinPriority int
}

// Degrader is the load-level state machine: a pure, deterministic
// controller that maps load observations (aggregate queue depth, shed rate
// over the last window) to a current level. Escalation is immediate —
// possibly several rungs at once; de-escalation steps down one rung after
// hold consecutive calm observations, so a flapping load does not toggle
// bindings on and off.
//
// The Degrader holds no locks and spawns nothing; the caller serializes
// Observe and applies level transitions (disabling bindings by priority,
// emitting trace spans). That makes the controller directly testable
// without goroutines or timers.
type Degrader struct {
	levels []Level
	hold   int
	cur    int
	calm   int
}

// NewDegrader builds a controller over the given ladder, ordered mild to
// severe. hold is the number of consecutive calm observations before
// stepping down one level; values below 1 select 1.
func NewDegrader(levels []Level, hold int) *Degrader {
	if hold < 1 {
		hold = 1
	}
	return &Degrader{levels: append([]Level(nil), levels...), hold: hold}
}

// Levels returns the ladder.
func (g *Degrader) Levels() []Level { return append([]Level(nil), g.levels...) }

// Level returns the current level: 0 for normal operation, i for
// Levels()[i-1] active.
func (g *Degrader) Level() int { return g.cur }

// LevelName names a level index ("normal" for 0).
func (g *Degrader) LevelName(level int) string {
	if level <= 0 || level > len(g.levels) {
		return "normal"
	}
	if n := g.levels[level-1].Name; n != "" {
		return n
	}
	return "level-" + itoa(level)
}

// MinPriority returns the lowest disabled priority class at the current
// level, or 0 when nothing is disabled.
func (g *Degrader) MinPriority() int {
	if g.cur == 0 {
		return 0
	}
	return g.levels[g.cur-1].MinPriority
}

// Observe feeds one load sample and returns the level transition it
// caused, if any.
func (g *Degrader) Observe(depth int, shedRate float64) (from, to int, changed bool) {
	target := 0
	for i, l := range g.levels {
		if (l.QueueDepth > 0 && depth >= l.QueueDepth) ||
			(l.ShedRate > 0 && shedRate >= l.ShedRate) {
			target = i + 1
		}
	}
	switch {
	case target > g.cur:
		from, to = g.cur, target
		g.cur = target
		g.calm = 0
		return from, to, true
	case target < g.cur:
		g.calm++
		if g.calm >= g.hold {
			from, to = g.cur, g.cur-1
			g.cur--
			g.calm = 0
			return from, to, true
		}
	default:
		g.calm = 0
	}
	return g.cur, g.cur, false
}

// Force pins the controller at level (clamped to the ladder) and returns
// the transition, if any. It is the operator/replay override: boot-time
// journal replay re-establishes the level a crashed dispatcher had
// reached without having to reproduce the load that caused it. Subsequent
// Observe calls resume normal escalation/de-escalation from the forced
// level.
func (g *Degrader) Force(level int) (from, to int, changed bool) {
	if level < 0 {
		level = 0
	}
	if level > len(g.levels) {
		level = len(g.levels)
	}
	from, to = g.cur, level
	if from == to {
		return from, to, false
	}
	g.cur = level
	g.calm = 0
	return from, to, true
}

// itoa avoids importing strconv for one diagnostic label.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
