package admit

import (
	"context"
	"sync"
	"time"
)

// qitem is one admitted submission.
type qitem struct {
	key any
	run Work
}

// Queue is one event's bounded admission queue: producers Submit work, pool
// workers drain it one item per turn. The policy decides what happens at
// capacity. Keys must be comparable; Coalesce merges pending items by key.
type Queue struct {
	name string
	pol  Policy
	pool *Pool

	mu    sync.Mutex
	items []qitem
	head  int
	// listed is true while the queue is on the pool's runnable list (or a
	// worker is about to relist it); it keeps the queue from being listed
	// more than once.
	listed  bool
	waiters []chan struct{}

	submitted int64
	completed int64
	shed      int64
	coalesced int64
	retried   int64
	inflight  int
	retrying  int
	maxDepth  int

	// onShed, when set, observes every shed decision (for trace spans and
	// the degradation controller). Called without the queue lock.
	onShed func()
}

// NewQueue creates a queue drained by pool under the given policy. name
// labels diagnostics and overload errors (typically the event name).
func NewQueue(name string, pol Policy, pool *Pool) *Queue {
	return &Queue{name: name, pol: pol, pool: pool}
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Policy returns the queue's admission policy.
func (q *Queue) Policy() Policy { return q.pol }

// OnShed registers a hook observing every shed decision. Call before use.
func (q *Queue) OnShed(fn func()) { q.onShed = fn }

// Stats returns a consistent snapshot of the queue's accounting.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Submitted: q.submitted,
		Completed: q.completed,
		Shed:      q.shed,
		Coalesced: q.coalesced,
		Retried:   q.retried,
		Retrying:  q.retrying,
		Depth:     len(q.items) - q.head,
		MaxDepth:  q.maxDepth,
		InFlight:  q.inflight,
	}
}

// Submit offers one work item under the queue's policy. A nil error means
// the item was admitted (or coalesced into a pending duplicate); a shed
// submission returns an *OverloadError wrapping ErrOverload. In Block mode
// the wait is bounded by the policy's BlockTimeout and by ctx.
func (q *Queue) Submit(ctx context.Context, key any, run Work) error {
	depth := q.pol.depth()
	q.mu.Lock()
	q.submitted++
	for {
		if q.pol.Mode == Coalesce && key != nil {
			merged := false
			for i := q.head; i < len(q.items); i++ {
				if q.items[i].key == key {
					merged = true
					break
				}
			}
			if merged {
				q.coalesced++
				q.mu.Unlock()
				return nil
			}
		}
		if len(q.items)-q.head < depth {
			break
		}
		switch q.pol.Mode {
		case Shed, Coalesce:
			return q.shedLocked(depth)
		case ShedOldest:
			q.items[q.head] = qitem{}
			q.head++
			q.shed++
			q.mu.Unlock()
			q.notifyShed()
			q.mu.Lock()
		case Block:
			if err := q.blockLocked(ctx, depth); err != nil {
				return err
			}
			// Space may have been granted; re-check under the lock.
		}
	}
	q.items = append(q.items, qitem{key: key, run: run})
	if d := len(q.items) - q.head; d > q.maxDepth {
		q.maxDepth = d
	}
	listed := q.listed
	q.listed = true
	q.mu.Unlock()
	if !listed {
		q.pool.enqueue(q)
	}
	return nil
}

// BatchStats reports how one SubmitBatch's submissions were disposed:
// every frame ends as exactly one of admitted, coalesced, or shed, so
// Admitted + Coalesced + Shed == len(runs) and the queue's ledger identity
// (Submitted == Completed + Shed + Coalesced at drain) is preserved.
type BatchStats struct {
	Admitted  int
	Coalesced int
	Shed      int
}

// SubmitBatch offers a batch of work items in one ledger transaction: the
// lock is taken once, the whole batch is accounted as submitted, and the
// policy disposes of every item before the lock releases (Block mode
// excepted — a full queue parks the producer per frame, as a loop of
// Submits would). The terminal ledger is identical to a loop of Submit
// calls against a quiescent queue:
//
//   - Coalesce with a pending duplicate absorbs the whole batch as
//     coalesced; with space and no duplicate, one representative item
//     stands for the batch and the remaining n-1 frames are coalesced
//     into it (a loop's submissions 2..n would each find the duplicate
//     submission 1 enqueued); with the queue full, the batch is shed.
//   - Shed admits up to the free capacity and tail-drops the rest.
//   - ShedOldest drops the oldest pending item per admitted overflow
//     frame, exactly as the loop form does.
//   - Block parks for space per frame, bounded by the policy's
//     BlockTimeout and ctx; a timed-out frame is shed and the batch
//     continues with the next frame.
//
// The pool is notified once for the whole batch instead of once per item.
func (q *Queue) SubmitBatch(ctx context.Context, key any, runs []Work) BatchStats {
	var st BatchStats
	n := len(runs)
	if n == 0 {
		return st
	}
	depth := q.pol.depth()
	q.mu.Lock()
	q.submitted += int64(n)
	if q.pol.Mode == Coalesce && key != nil {
		for i := q.head; i < len(q.items); i++ {
			if q.items[i].key == key {
				q.coalesced += int64(n)
				q.mu.Unlock()
				return BatchStats{Coalesced: n}
			}
		}
		if len(q.items)-q.head >= depth {
			q.shed += int64(n)
			q.mu.Unlock()
			for i := 0; i < n; i++ {
				q.notifyShed()
			}
			return BatchStats{Shed: n}
		}
		q.items = append(q.items, qitem{key: key, run: runs[0]})
		if d := len(q.items) - q.head; d > q.maxDepth {
			q.maxDepth = d
		}
		q.coalesced += int64(n - 1)
		listed := q.listed
		q.listed = true
		q.mu.Unlock()
		if !listed {
			q.pool.enqueue(q)
		}
		return BatchStats{Admitted: 1, Coalesced: n - 1}
	}
	// pendingNotify counts sheds whose hook still needs to run after the
	// lock releases; Block-mode timeouts notify inside blockLocked.
	pendingNotify := 0
admitLoop:
	for i := 0; i < n; i++ {
		for len(q.items)-q.head >= depth {
			switch q.pol.Mode {
			case Shed, Coalesce:
				// Tail-drop the rest of the batch in one ledger write.
				// (Coalesce reaches here only with a nil key: no merge
				// identity, so capacity behaves as Shed, matching Submit.)
				rest := n - i
				q.shed += int64(rest)
				st.Shed += rest
				pendingNotify += rest
				break admitLoop
			case ShedOldest:
				q.items[q.head] = qitem{}
				q.head++
				q.shed++
				pendingNotify++
			case Block:
				if err := q.blockLocked(ctx, depth); err != nil {
					// This frame timed out and was shed (accounted and
					// notified by shedLocked, which released the lock);
					// re-take the lock and move on to the next frame.
					st.Shed++
					q.mu.Lock()
					continue admitLoop
				}
				// Space may have been granted; re-check under the lock.
			}
		}
		q.items = append(q.items, qitem{key: key, run: runs[i]})
		st.Admitted++
		if d := len(q.items) - q.head; d > q.maxDepth {
			q.maxDepth = d
		}
	}
	listed := q.listed
	if st.Admitted > 0 {
		q.listed = true
	}
	q.mu.Unlock()
	for ; pendingNotify > 0; pendingNotify-- {
		q.notifyShed()
	}
	if st.Admitted > 0 && !listed {
		q.pool.enqueue(q)
	}
	return st
}

// Requeue re-admits a transiently failed run (retry). It bypasses the
// capacity bound — the item was already admitted once and stays charged to
// the queue until it reaches a final outcome — so retry depth is bounded by
// the policy's Retry count, not re-subjected to shedding.
func (q *Queue) Requeue(run Work) {
	q.mu.Lock()
	q.retried++
	q.retrying--
	q.items = append(q.items, qitem{run: run})
	if d := len(q.items) - q.head; d > q.maxDepth {
		q.maxDepth = d
	}
	listed := q.listed
	q.listed = true
	q.mu.Unlock()
	if !listed {
		q.pool.enqueue(q)
	}
}

// shedLocked records one shed and returns the typed overload error. The
// queue lock is held on entry and released here.
func (q *Queue) shedLocked(depth int) error {
	q.shed++
	d := len(q.items) - q.head
	q.mu.Unlock()
	q.notifyShed()
	return &OverloadError{Queue: q.name, Mode: q.pol.Mode, Depth: d}
}

// blockLocked waits for a free slot in Block mode. The queue lock is held
// on entry and re-held on a nil return; a non-nil return (timeout or
// context end) leaves the lock released.
func (q *Queue) blockLocked(ctx context.Context, depth int) error {
	w := make(chan struct{})
	q.waiters = append(q.waiters, w)
	q.mu.Unlock()

	var timeout <-chan time.Time
	if q.pol.BlockTimeout > 0 {
		t := time.NewTimer(q.pol.BlockTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w:
		q.mu.Lock()
		return nil
	case <-timeout:
	case <-ctx.Done():
	}
	q.mu.Lock()
	if q.removeWaiterLocked(w) {
		return q.shedLocked(depth)
	}
	// A drain granted the slot as we gave up; take it anyway (the lock is
	// held and the caller re-checks capacity).
	return nil
}

// removeWaiterLocked removes w from the waiter list; false means a drain
// already granted (and closed) it. Caller holds the lock.
func (q *Queue) removeWaiterLocked(w chan struct{}) bool {
	for i, c := range q.waiters {
		if c == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// notifyShed runs the shed hook outside the queue lock.
func (q *Queue) notifyShed() {
	if q.onShed != nil {
		q.onShed()
	}
}

// pop removes the head item for a pool worker. more reports whether
// further items remain (the worker relists the queue before running); a
// nil run means the queue emptied between listing and pop.
func (q *Queue) pop() (run Work, more bool) {
	q.mu.Lock()
	if q.head >= len(q.items) {
		q.listed = false
		q.mu.Unlock()
		return nil, false
	}
	it := q.items[q.head]
	q.items[q.head] = qitem{}
	q.head++
	q.inflight++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	more = q.head < len(q.items)
	if !more {
		q.listed = false
	}
	// One slot freed: admit the longest-waiting blocked producer.
	var grant chan struct{}
	if len(q.waiters) > 0 {
		grant = q.waiters[0]
		q.waiters = q.waiters[1:]
	}
	q.mu.Unlock()
	if grant != nil {
		close(grant)
	}
	return it.run, more
}

// settle retires one in-flight run: done marks the item's final outcome,
// !done means the run requeued itself (retry) and stays charged.
func (q *Queue) settle(done bool) {
	q.mu.Lock()
	q.inflight--
	if done {
		q.completed++
	} else {
		// The run scheduled its own Requeue (retry backoff); keep it
		// charged so Drained stays false across the backoff window.
		q.retrying++
	}
	q.mu.Unlock()
}
