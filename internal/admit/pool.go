package admit

import (
	"runtime"
	"sync"
	"time"
)

// DefaultIdleTimeout is how long a pool worker waits for work before
// exiting; the pool shrinks back to zero goroutines when idle.
const DefaultIdleTimeout = 200 * time.Millisecond

// DefaultWorkers returns the default worker cap: generous enough that
// moderately blocking handlers do not starve each other, small enough that
// an async burst cannot take the process down.
func DefaultWorkers() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 16 {
		n = 16
	}
	return n
}

// Work is one admitted queue item: it reports whether the item reached a
// final outcome. Returning false means the item will be requeued (retry)
// and must not be counted completed yet.
type Work func() (done bool)

// Pool is a shared, size-capped worker pool. Workers are started lazily as
// work arrives, park when idle, and exit after an idle timeout, so an idle
// pool holds no goroutines at all. Work comes from two sources: bounded
// admission Queues (drained fairly, one item per turn) and plain Go tasks
// (an unbounded FIFO — the default-spawner path, which bounds concurrency
// but never sheds).
//
// Abandon/Reclaim implement watchdog survival: when a supervising watchdog
// gives up on an invocation that is squatting a worker, Abandon raises the
// effective capacity by one so a replacement worker can take its place; if
// the stuck invocation ever returns, Reclaim lowers it again and the first
// worker to notice the surplus exits. Goroutines therefore stay bounded by
// capacity plus the number of currently stuck invocations — the best Go can
// do, since a goroutine cannot be destroyed from outside.
type Pool struct {
	mu          sync.Mutex
	max         int
	extra       int
	running     int
	parked      []chan struct{}
	fifo        []func()
	fifoHead    int
	runq        []*Queue
	runqHead    int
	idleTimeout time.Duration
	abandoned   int64
}

// NewPool creates a pool capped at max workers (zero selects
// DefaultWorkers).
func NewPool(max int) *Pool {
	if max <= 0 {
		max = DefaultWorkers()
	}
	return &Pool{max: max, idleTimeout: DefaultIdleTimeout}
}

// SetIdleTimeout overrides how long an idle worker lingers before exiting;
// zero or negative keeps workers parked indefinitely. Call before use.
func (p *Pool) SetIdleTimeout(d time.Duration) { p.idleTimeout = d }

// Capacity returns the configured worker cap.
func (p *Pool) Capacity() int { return p.max }

// Stats returns a snapshot of the pool.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Capacity:  p.max,
		Extra:     p.extra,
		Running:   p.running,
		Parked:    len(p.parked),
		Abandoned: p.abandoned,
	}
}

// Go runs fn on a pool worker. The task FIFO is unbounded: Go never blocks
// and never sheds, it only bounds how many tasks run at once. As with the
// `go` statement it replaces, fn must not panic.
func (p *Pool) Go(fn func()) {
	p.mu.Lock()
	p.fifo = append(p.fifo, fn)
	p.dispatchLocked()
	p.mu.Unlock()
}

// Abandon raises the pool's effective capacity by one: an invocation is
// stuck past its watchdog deadline while holding a worker, and a
// replacement may be started in its place.
func (p *Pool) Abandon() {
	p.mu.Lock()
	p.extra++
	p.abandoned++
	p.dispatchLocked()
	p.mu.Unlock()
}

// Reclaim lowers the effective capacity after an abandoned invocation
// finally returned; the surplus worker exits at its next scheduling point.
func (p *Pool) Reclaim() {
	p.mu.Lock()
	p.extra--
	p.mu.Unlock()
}

// limitLocked is the current effective worker cap.
func (p *Pool) limitLocked() int { return p.max + p.extra }

// enqueue lists q as runnable. Called by Queue with its own lock released.
func (p *Pool) enqueue(q *Queue) {
	p.mu.Lock()
	p.runq = append(p.runq, q)
	p.dispatchLocked()
	p.mu.Unlock()
}

// haveWorkLocked reports whether any task or runnable queue is pending.
func (p *Pool) haveWorkLocked() bool {
	return p.fifoHead < len(p.fifo) || p.runqHead < len(p.runq)
}

// dispatchLocked makes sure pending work has a worker: wake a parked one,
// else start a new one if under the cap. With everything busy the work
// waits for the next worker to come free.
func (p *Pool) dispatchLocked() {
	if !p.haveWorkLocked() {
		return
	}
	if n := len(p.parked); n > 0 {
		w := p.parked[n-1]
		p.parked = p.parked[:n-1]
		close(w)
		return
	}
	if p.running < p.limitLocked() {
		p.running++
		go p.worker()
	}
}

// takeFifoLocked pops the next plain task, or nil.
func (p *Pool) takeFifoLocked() func() {
	if p.fifoHead >= len(p.fifo) {
		return nil
	}
	fn := p.fifo[p.fifoHead]
	p.fifo[p.fifoHead] = nil
	p.fifoHead++
	if p.fifoHead == len(p.fifo) {
		p.fifo = p.fifo[:0]
		p.fifoHead = 0
	}
	return fn
}

// takeQueueLocked pops the next runnable queue, or nil.
func (p *Pool) takeQueueLocked() *Queue {
	if p.runqHead >= len(p.runq) {
		return nil
	}
	q := p.runq[p.runqHead]
	p.runq[p.runqHead] = nil
	p.runqHead++
	if p.runqHead == len(p.runq) {
		p.runq = p.runq[:0]
		p.runqHead = 0
	}
	return q
}

// removeParkedLocked removes w from the parked list; false means a waker
// already claimed (and closed) it.
func (p *Pool) removeParkedLocked(w chan struct{}) bool {
	for i, c := range p.parked {
		if c == w {
			p.parked = append(p.parked[:i], p.parked[i+1:]...)
			return true
		}
	}
	return false
}

// worker is the pool worker loop: drain plain tasks and queue items, park
// when idle, exit after the idle timeout or when capacity shrank below the
// live population.
func (p *Pool) worker() {
	for {
		p.mu.Lock()
		if p.running > p.limitLocked() {
			// Capacity shrank (Reclaim after an abandoned invocation
			// returned): this worker is surplus.
			p.running--
			p.mu.Unlock()
			return
		}
		if fn := p.takeFifoLocked(); fn != nil {
			p.mu.Unlock()
			fn()
			continue
		}
		if q := p.takeQueueLocked(); q != nil {
			p.mu.Unlock()
			run, more := q.pop()
			if more {
				// The queue has further items: relist it so another
				// worker can drain it concurrently with this run.
				p.enqueue(q)
			}
			if run != nil {
				q.settle(run())
			}
			continue
		}
		// Idle: park until woken, exiting after the idle timeout so an
		// idle pool holds no goroutines.
		w := make(chan struct{})
		p.parked = append(p.parked, w)
		p.mu.Unlock()
		if p.idleTimeout <= 0 {
			<-w
			continue
		}
		t := time.NewTimer(p.idleTimeout)
		select {
		case <-w:
			t.Stop()
		case <-t.C:
			p.mu.Lock()
			if p.removeParkedLocked(w) {
				p.running--
				p.mu.Unlock()
				return
			}
			p.mu.Unlock()
			// A waker claimed the channel as the timer fired; consume
			// the wake and keep serving.
			<-w
		}
	}
}
