package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedPool returns a pool whose single worker is blocked until release is
// closed, so tests can fill queues deterministically.
func gatedPool(t *testing.T) (pool *Pool, release chan struct{}) {
	t.Helper()
	pool = NewPool(1)
	release = make(chan struct{})
	started := make(chan struct{})
	pool.Go(func() {
		close(started)
		<-release
	})
	<-started
	return pool, release
}

func waitStats(t *testing.T, q *Queue, pred func(QueueStats) bool) QueueStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := q.Stats()
		if pred(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for queue state; stats = %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShedPolicyRejectsNewest(t *testing.T) {
	pool, release := gatedPool(t)
	defer close(release)
	q := NewQueue("E", Policy{Mode: Shed, Depth: 2}, pool)
	var ran atomic.Int64
	work := func() bool { ran.Add(1); return true }
	if err := q.Submit(context.Background(), nil, work); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(context.Background(), nil, work); err != nil {
		t.Fatal(err)
	}
	err := q.Submit(context.Background(), nil, work)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Queue != "E" || oe.Mode != Shed {
		t.Fatalf("overload error = %+v", oe)
	}
	s := q.Stats()
	if s.Submitted != 3 || s.Shed != 1 || s.Depth != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestShedOldestDropsHead(t *testing.T) {
	pool, release := gatedPool(t)
	q := NewQueue("E", Policy{Mode: ShedOldest, Depth: 2}, pool)
	var got []int
	var mu sync.Mutex
	mk := func(i int) Work {
		return func() bool { mu.Lock(); got = append(got, i); mu.Unlock(); return true }
	}
	for i := 1; i <= 4; i++ {
		if err := q.Submit(context.Background(), nil, mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	s := waitStats(t, q, func(s QueueStats) bool { return s.Completed == 2 && s.Depth == 0 })
	if s.Shed != 2 || s.Submitted != 4 {
		t.Fatalf("stats = %+v", s)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("ran %v, want the two newest [3 4]", got)
	}
}

func TestCoalesceMergesByKey(t *testing.T) {
	pool, release := gatedPool(t)
	q := NewQueue("E", Policy{Mode: Coalesce, Depth: 8}, pool)
	var ran atomic.Int64
	work := func() bool { ran.Add(1); return true }
	type key struct{ n int }
	k := &key{1}
	for i := 0; i < 5; i++ {
		if err := q.Submit(context.Background(), k, work); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Submit(context.Background(), &key{2}, work); err != nil {
		t.Fatal(err)
	}
	close(release)
	s := waitStats(t, q, func(s QueueStats) bool { return s.Depth == 0 && s.Completed == 2 })
	if s.Coalesced != 4 || s.Submitted != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if ran.Load() != 2 {
		t.Fatalf("ran %d, want 2 (one per distinct key)", ran.Load())
	}
}

func TestBlockTimesOutAsShed(t *testing.T) {
	pool, release := gatedPool(t)
	defer close(release)
	q := NewQueue("E", Policy{Mode: Block, Depth: 1, BlockTimeout: 10 * time.Millisecond}, pool)
	work := func() bool { return true }
	if err := q.Submit(context.Background(), nil, work); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := q.Submit(context.Background(), nil, work)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload after timeout", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("block returned before the timeout")
	}
	if s := q.Stats(); s.Shed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBlockAdmitsWhenSpaceFrees(t *testing.T) {
	pool := NewPool(1)
	q := NewQueue("E", Policy{Mode: Block, Depth: 1}, pool)
	gate := make(chan struct{})
	slow := func() bool { <-gate; return true }
	if err := q.Submit(context.Background(), nil, slow); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to take the first item so the queue slot frees
	// only when the second submission is already blocked.
	waitStats(t, q, func(s QueueStats) bool { return s.Depth == 0 })
	if err := q.Submit(context.Background(), nil, slow); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Submit(context.Background(), nil, func() bool { return true }) }()
	select {
	case err := <-done:
		t.Fatalf("blocked submit returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked submit failed after space freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked submit never admitted")
	}
	waitStats(t, q, func(s QueueStats) bool { return s.Completed == 3 })
}

func TestBlockHonorsContext(t *testing.T) {
	pool, release := gatedPool(t)
	defer close(release)
	q := NewQueue("E", Policy{Mode: Block, Depth: 1}, pool)
	if err := q.Submit(context.Background(), nil, func() bool { return true }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Submit(ctx, nil, func() bool { return true }); !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload on context end", err)
	}
}

func TestRequeueBypassesCapacityAndCounts(t *testing.T) {
	pool := NewPool(2)
	q := NewQueue("E", Policy{Mode: Shed, Depth: 1, Retry: 3}, pool)
	var attempts atomic.Int64
	var run Work
	run = func() bool {
		if attempts.Add(1) < 3 {
			q.Requeue(run)
			return false
		}
		return true
	}
	if err := q.Submit(context.Background(), nil, run); err != nil {
		t.Fatal(err)
	}
	s := waitStats(t, q, func(s QueueStats) bool { return s.Completed == 1 })
	if s.Retried != 2 || s.Submitted != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPoolBoundsWorkers(t *testing.T) {
	pool := NewPool(3)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 50; i++ {
		wg.Add(1)
		pool.Go(func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-gate
			running.Add(-1)
		})
	}
	time.Sleep(20 * time.Millisecond)
	if s := pool.Stats(); s.Running > 3 {
		t.Fatalf("pool running %d workers, cap 3", s.Running)
	}
	close(gate)
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d, cap 3", p)
	}
}

func TestPoolWorkersExitWhenIdle(t *testing.T) {
	pool := NewPool(4)
	pool.SetIdleTimeout(5 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		pool.Go(func() { wg.Done() })
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := pool.Stats(); s.Running == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers lingered: %+v", pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAbandonReclaimRestoresCapacity(t *testing.T) {
	pool := NewPool(1)
	stuck := make(chan struct{})
	pool.Go(func() { <-stuck })
	time.Sleep(5 * time.Millisecond)
	// The only worker is stuck. A watchdog abandons it: capacity rises,
	// and a replacement can serve new work.
	pool.Abandon()
	done := make(chan struct{})
	pool.Go(func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("replacement worker never ran after Abandon")
	}
	if s := pool.Stats(); s.Abandoned != 1 || s.Extra != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The stuck invocation returns: Reclaim shrinks capacity back and the
	// surplus worker exits.
	close(stuck)
	pool.Reclaim()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := pool.Stats(); s.Running <= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("surplus worker never exited: %+v", pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDegraderTransitions(t *testing.T) {
	g := NewDegrader([]Level{
		{Name: "brownout", QueueDepth: 10, MinPriority: 2},
		{Name: "blackout", QueueDepth: 50, ShedRate: 0.5, MinPriority: 1},
	}, 2)

	if from, to, changed := g.Observe(5, 0); changed || from != 0 || to != 0 {
		t.Fatalf("calm observation transitioned: %d -> %d", from, to)
	}
	// Depth crosses the first rung.
	if from, to, changed := g.Observe(12, 0); !changed || from != 0 || to != 1 {
		t.Fatalf("expected 0->1, got %d->%d changed=%v", from, to, changed)
	}
	if g.MinPriority() != 2 {
		t.Fatalf("MinPriority = %d", g.MinPriority())
	}
	// Shed rate alone escalates straight to the second rung.
	if _, to, changed := g.Observe(12, 0.6); !changed || to != 2 {
		t.Fatalf("expected escalation to 2, got %d", to)
	}
	// One calm observation is not enough (hold = 2).
	if _, _, changed := g.Observe(0, 0); changed {
		t.Fatal("stepped down after one calm observation")
	}
	if _, to, changed := g.Observe(0, 0); !changed || to != 1 {
		t.Fatalf("expected step down to 1, got %d changed=%v", to, changed)
	}
	// A load spike resets the calm counter.
	g.Observe(0, 0)
	if _, to, changed := g.Observe(60, 0); !changed || to != 2 {
		t.Fatalf("expected re-escalation to 2, got %d", to)
	}
	if g.LevelName(g.Level()) != "blackout" {
		t.Fatalf("level name = %q", g.LevelName(g.Level()))
	}
}

func TestBackoffIsExponentialBoundedAndJittered(t *testing.T) {
	p := Policy{RetryBackoff: 10 * time.Millisecond, RetryFactor: 2, MaxRetryBackoff: 80 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond, 3: 40 * time.Millisecond, 4: 80 * time.Millisecond, 10: 80 * time.Millisecond} {
		for r := uint64(0); r < 100; r += 7 {
			d := p.Backoff(attempt, r)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d rand %d: backoff %v outside [%v, %v]", attempt, r, d, want/2, want)
			}
		}
	}
	// Jitter actually varies with the entropy word.
	if p.Backoff(3, 1) == p.Backoff(3, 1e9) {
		t.Fatal("backoff ignored its jitter source")
	}
}

func TestQueueAccountingIdentity(t *testing.T) {
	for _, mode := range []Mode{Shed, ShedOldest, Coalesce} {
		pool := NewPool(4)
		q := NewQueue("E", Policy{Mode: mode, Depth: 4}, pool)
		var wg sync.WaitGroup
		key := new(int)
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = q.Submit(context.Background(), key, func() bool {
					time.Sleep(100 * time.Microsecond)
					return true
				})
			}()
		}
		wg.Wait()
		s := waitStats(t, q, func(s QueueStats) bool { return s.Drained() })
		if got := s.Completed + s.Shed + s.Coalesced; got != s.Submitted {
			t.Fatalf("%v: %d completed + %d shed + %d coalesced = %d, want %d submitted",
				mode, s.Completed, s.Shed, s.Coalesced, got, s.Submitted)
		}
	}
}
