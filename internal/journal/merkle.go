package journal

import "crypto/sha256"

// Tamper evidence: each sealed batch carries a Merkle root over its
// record frames, chained to the previous batch's root. Verify recomputes
// the whole chain; any in-place edit breaks a record CRC or a root, and
// any truncation inside the sealed region breaks the chain or leaves the
// file off a seal boundary. (Removing whole batches from the tail is the
// one silent cut — detectable only against an externally stored head
// root, which Journal.Head exposes for exactly that purpose; see
// DESIGN.md decision 17.)

// HashSize is the byte length of leaf hashes and chained roots.
const HashSize = sha256.Size

// leafHash hashes one encoded record frame (CRC included) into a Merkle
// leaf. A domain prefix keeps leaves and interior nodes from colliding.
func leafHash(frame []byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(frame)
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree hashes into their parent.
func nodeHash(l, r [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// merkleRoot folds leaf hashes into a root, promoting an odd tail node
// unchanged. An empty batch (a timer flush with nothing pending never
// seals, so this is defensive) hashes to the zero leaf.
func merkleRoot(leaves [][HashSize]byte) [HashSize]byte {
	if len(leaves) == 0 {
		return leafHash(nil)
	}
	level := leaves
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// chainRoot links a batch root to the previous chained root, producing
// the value a seal record carries. The genesis prev is all zeros.
func chainRoot(prev [HashSize]byte, batch [HashSize]byte, batchIndex uint64) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x02})
	h.Write(prev[:])
	h.Write(batch[:])
	var idx [8]byte
	for i := range idx {
		idx[i] = byte(batchIndex >> (8 * i))
	}
	h.Write(idx[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}
