package journal

import (
	"bytes"
	"fmt"
	"io"
)

// Batch is one sealed group commit read back from a journal.
type Batch struct {
	// Records are the batch's records in append order (seal excluded).
	Records []Record
	// Seal is the batch's seal record.
	Seal Record
	// Root is the chained Merkle root the seal carries.
	Root [HashSize]byte
	// Offset is the batch's first byte offset in the journal.
	Offset int
}

// ScanResult is what Scan recovers from a journal byte stream.
type ScanResult struct {
	// Batches are the sealed batches, in order, up to the first damage.
	Batches []Batch
	// Tail is the valid unsealed records following the last seal — work
	// the batcher had appended but not yet committed when the journal
	// ended (the crash window).
	Tail []Record
	// TailOffset is the byte offset where the tail (or damage) begins.
	TailOffset int
	// Damaged is set when the stream ends in something other than a
	// clean seal boundary or a cleanly truncated tail: a CRC mismatch,
	// an impossible frame, or a seal whose root does not verify.
	Damaged bool
	// Err describes the damage (nil when Damaged is false).
	Err error
}

// SealedRecords flattens the sealed batches' records.
func (s *ScanResult) SealedRecords() []Record {
	var out []Record
	for i := range s.Batches {
		out = append(out, s.Batches[i].Records...)
	}
	return out
}

// Scan parses a journal byte stream into sealed batches and a
// recoverable tail. Scan is the lenient reader replay builds on: it
// never fails, it reports. Each record frame's CRC is checked as it is
// parsed; each seal's Merkle root is recomputed over the batch frames
// and chained to the previous seal. Parsing stops at the first
// inconsistency; everything before the last valid seal is trustworthy,
// everything after is tail or damage.
func Scan(data []byte) *ScanResult {
	res := &ScanResult{}
	var (
		prev       [HashSize]byte
		leaves     [][HashSize]byte
		recs       []Record
		batchStart int
		off        int
	)
	fail := func(err error) *ScanResult {
		res.Damaged = true
		res.Err = err
		res.Tail = nil
		res.TailOffset = batchStart
		return res
	}
	for off < len(data) {
		rec, n, err := DecodeFrame(data[off:])
		if err != nil {
			// A frame cut off by end-of-input with no later parseable
			// frame is the crash signature: report the valid tail records
			// and stop. Anything else — a CRC mismatch, or damage with
			// more intact frames beyond it — is tampering or corruption
			// inside the journal body.
			if err == ErrTruncated && !frameAfter(data[off+1:]) {
				res.Tail = recs
				res.TailOffset = batchStart
				return res
			}
			return fail(fmt.Errorf("journal: damage at offset %d: %w", off, err))
		}
		frame := data[off : off+n]
		if rec.Kind == KindSeal {
			if len(rec.Root) != HashSize {
				return fail(fmt.Errorf("journal: seal at offset %d has malformed root", off))
			}
			root := chainRoot(prev, merkleRoot(leaves), uint64(len(res.Batches)))
			if !bytes.Equal(root[:], rec.Root) {
				return fail(fmt.Errorf("journal: seal at offset %d root mismatch (batch %d)", off, len(res.Batches)))
			}
			if int64(len(recs)) != rec.B {
				return fail(fmt.Errorf("journal: seal at offset %d counts %d records, batch has %d", off, rec.B, len(recs)))
			}
			b := Batch{Records: recs, Seal: rec, Offset: batchStart}
			copy(b.Root[:], rec.Root)
			res.Batches = append(res.Batches, b)
			prev = b.Root
			leaves = nil
			recs = nil
			batchStart = off + n
		} else {
			leaves = append(leaves, leafHash(frame))
			recs = append(recs, rec)
		}
		off += n
	}
	res.Tail = recs
	res.TailOffset = batchStart
	return res
}

// frameAfter reports whether any byte offset in data starts a valid
// frame. The CRC makes a frame a strong self-synchronization mark: a
// truncated tail is followed by nothing parseable, while an in-place
// edit mid-journal leaves later intact frames that this scan finds.
func frameAfter(data []byte) bool {
	for off := 0; off < len(data); off++ {
		if _, _, err := DecodeFrame(data[off:]); err == nil {
			return true
		}
	}
	return false
}

// VerifyReport summarizes a verification pass.
type VerifyReport struct {
	// Batches is the number of sealed, chain-verified batches.
	Batches int
	// Records is the number of records inside sealed batches.
	Records int
	// Head is the final chained Merkle root.
	Head [HashSize]byte
}

// Verify checks that data is exactly a well-formed sealed journal: every
// record frame's CRC holds, every batch's Merkle root recomputes and
// chains to its predecessor, and the stream ends on a seal boundary.
// Any single-byte edit, any mid-file truncation, and any unsealed tail
// (a crash not yet recovered) fail with a descriptive error. Use Scan
// for crash recovery; Verify is the auditor's strict check.
func Verify(data []byte) (VerifyReport, error) {
	res := Scan(data)
	var rep VerifyReport
	if res.Damaged {
		return rep, res.Err
	}
	if len(res.Tail) > 0 || res.TailOffset != len(data) {
		return rep, fmt.Errorf("journal: %d unsealed tail record(s) after offset %d (crash tail or truncated seal)",
			len(res.Tail), res.TailOffset)
	}
	for i := range res.Batches {
		rep.Records += len(res.Batches[i].Records)
	}
	rep.Batches = len(res.Batches)
	if rep.Batches > 0 {
		rep.Head = res.Batches[rep.Batches-1].Root
	}
	return rep, nil
}

// VerifyAgainst is Verify plus a trust anchor: the final chained root
// must equal head. This closes the one gap chaining alone leaves open —
// silently removing whole sealed batches from the tail — at the cost of
// storing one 32-byte root out of band (Journal.Head after each flush).
func VerifyAgainst(data []byte, head [HashSize]byte) (VerifyReport, error) {
	rep, err := Verify(data)
	if err != nil {
		return rep, err
	}
	if rep.Head != head {
		return rep, fmt.Errorf("journal: head root mismatch: journal ends at %x, trusted head is %x",
			rep.Head[:8], head[:8])
	}
	return rep, nil
}

// ReadAll reads r fully and scans it.
func ReadAll(r io.Reader) (*ScanResult, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Scan(data), nil
}
