// Package journal is the dispatcher's durable, tamper-evident lifecycle
// journal. The paper treats the binding set as ephemeral: every install,
// quarantine, and quota decision lives only in dispatcher memory, so a
// restart forgets who bound what, under which attributes, and why an
// extension was locked out. This package makes that history an
// append-only record: lifecycle transitions (install, uninstall,
// quarantine, probation, readmission, degradation, quota changes) plus
// 1-in-N sampled raises are collected off the hot path through a bounded
// channel — the same shed-don't-block shape internal/admit gives
// asynchronous work — encoded into a compact self-describing binary
// framing with a CRC per record, flushed by a size- or interval-
// triggered group commit, and sealed with a per-batch Merkle root
// chained to the previous batch. Verify detects any in-place edit or
// mid-file truncation; Replay re-drives the sealed records through the
// dispatcher's install path to reconstruct the full binding, quarantine,
// quota, and degradation state at boot.
//
// The package is mechanism-free in the same sense internal/admit and
// internal/fault are: it knows nothing about events, bindings, or plans.
// The dispatcher compiles the journal reference into each event's
// dispatch plan the way tracers and admission queues are compiled in, so
// a journal-off dispatcher executes plans with no journal field set and
// the raise path is untouched (TestJournalOffZeroAlloc enforces the
// measurable half of that contract).
package journal

import (
	"sync"
	"sync/atomic"
	"time"

	"spin/internal/stripe"
)

// Defaults for the group-commit batcher.
const (
	// DefaultBatchRecords seals a batch when this many records are
	// pending.
	DefaultBatchRecords = 64
	// DefaultBatchBytes seals a batch when the pending encoded bytes
	// reach this size.
	DefaultBatchBytes = 32 << 10
	// DefaultFlushInterval seals a non-empty batch at least this often,
	// bounding how long a record stays unsealed (the durability window).
	DefaultFlushInterval = 10 * time.Millisecond
	// DefaultQueueDepth bounds the ingress channel between emitters and
	// the batcher worker.
	DefaultQueueDepth = 1024
)

// sampleOff marks raise sampling disabled; the hot path sees one
// comparison and returns.
const sampleOff = ^uint64(0)

// Config configures a Journal.
type Config struct {
	// Sink receives the encoded journal. Required.
	Sink Sink
	// SampleRaises records 1 in SampleRaises raises (rounded up to a
	// power of two so the hot-path draw is a mask). Zero disables raise
	// records — the journal then carries lifecycle records only. One
	// records every raise.
	SampleRaises int
	// BatchRecords seals a batch at this many pending records; zero
	// selects DefaultBatchRecords.
	BatchRecords int
	// BatchBytes seals a batch at this many pending encoded bytes; zero
	// selects DefaultBatchBytes.
	BatchBytes int
	// FlushInterval seals a non-empty batch at least this often; zero
	// selects DefaultFlushInterval, negative disables the timer (size
	// triggers and Close only — for deterministic tests).
	FlushInterval time.Duration
	// QueueDepth bounds the ingress channel; zero selects
	// DefaultQueueDepth.
	QueueDepth int
}

// Stats is a snapshot of the journal's accounting.
type Stats struct {
	// Submitted counts records accepted into the ingress queue.
	Submitted int64
	// DroppedRaises counts sampled raise records shed because the
	// ingress queue was full. Lifecycle records are never shed; their
	// emitters block (the control plane can afford it; the worker never
	// takes dispatcher locks, so the wait is bounded by drain rate).
	DroppedRaises int64
	// Batches counts sealed group commits.
	Batches int64
	// Records counts records sealed into batches.
	Records int64
	// Bytes counts encoded bytes handed to the sink, seals included.
	Bytes int64
}

// sampleStripe is one cache-line-padded raise-sampling cell; striping
// mirrors internal/stripe so parallel raisers on many cores never
// contend on the sampling counter.
type sampleStripe struct {
	n atomic.Uint64
	_ [56]byte
}

// Journal collects lifecycle and sampled raise records, group-commits
// them into sealed batches, and tracks the Merkle chain head.
type Journal struct {
	sink Sink
	cfg  Config

	sampleMask uint64
	samples    [8]sampleStripe // len must match stripe package's shard count

	ch      chan Record
	flushCh chan chan struct{}
	done    chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup

	submitted atomic.Int64
	dropped   atomic.Int64

	mu      sync.Mutex
	head    [HashSize]byte
	batches int64
	records int64
	bytes   int64
}

// New starts a journal over cfg.Sink. The caller owns the sink's
// lifetime beyond Close.
func New(cfg Config) *Journal {
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = DefaultBatchRecords
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = DefaultBatchBytes
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	j := &Journal{
		sink:       cfg.Sink,
		cfg:        cfg,
		sampleMask: sampleOff,
		ch:         make(chan Record, cfg.QueueDepth),
		flushCh:    make(chan chan struct{}),
		done:       make(chan struct{}),
	}
	if cfg.SampleRaises > 0 {
		// Round up to a power of two so the sampling draw reduces to a
		// mask, the same trick the admission controller's load sampler
		// uses.
		n := uint64(1)
		for n < uint64(cfg.SampleRaises) {
			n <<= 1
		}
		j.sampleMask = n - 1
	}
	j.wg.Add(1)
	go j.run()
	return j
}

// SampleEvery returns the effective 1-in-N raise sampling rate (0 when
// raise records are disabled).
func (j *Journal) SampleEvery() int {
	if j.sampleMask == sampleOff {
		return 0
	}
	return int(j.sampleMask + 1)
}

// Record submits one lifecycle record. It blocks if the ingress queue is
// full: lifecycle transitions are control-plane rare and must not be
// lost, and the batcher worker never takes dispatcher locks, so the wait
// is bounded by drain rate. Records submitted after Close are dropped.
func (j *Journal) Record(rec Record) {
	if j.closed.Load() {
		return
	}
	j.submitted.Add(1)
	select {
	case j.ch <- rec:
	case <-j.done:
	}
}

// SampleRaise submits a sampled raise record for event. idx is the
// caller's stripe shard (stripe.Index(), already in hand on the raise
// path), so parallel raisers draw from independent cache lines. A full
// queue sheds the sample — raise records are statistical, and the raise
// path never blocks.
func (j *Journal) SampleRaise(idx int, event string, fired int) {
	if j.SampleDraw(idx) {
		j.SampleHit(event, fired)
	}
}

// SampleDraw advances the stripe's sampling counter and reports whether
// this raise is the 1-in-N winner that should be recorded via SampleHit.
// Callers that already maintain a per-raise striped counter should pass
// its value to SampleCount instead, which costs one mask test.
func (j *Journal) SampleDraw(idx int) bool {
	mask := j.sampleMask
	if mask == sampleOff {
		return false
	}
	return j.samples[idx].n.Add(1)&mask == 0
}

// SampleCount is the dispatcher's zero-extra-cost sampling draw: n is a
// counter value the caller already advances once per raise (the striped
// raise total), so the draw reuses an atomic RMW that is paid regardless
// of journaling and reduces to a single mask test here. n must be
// nonzero — which a post-increment value always is — because the
// sampling-off encoding relies on it: an all-ones mask can only see
// n&mask == 0 for n == 0. The ≤5% raise-overhead budget at 1/1024
// sampling does not survive a second LOCK RMW per raise, let alone a
// call: this compiles to two instructions at the raise tail.
func (j *Journal) SampleCount(n uint64) bool {
	return n&j.sampleMask == 0
}

// SampleHit enqueues the sampled raise record a winning SampleDraw
// earned, shedding it if the ingress queue is full.
func (j *Journal) SampleHit(event string, fired int) {
	if j.closed.Load() {
		return
	}
	select {
	case j.ch <- Record{Kind: KindRaise, Event: event, A: int64(fired)}:
		j.submitted.Add(1)
	default:
		j.dropped.Add(1)
	}
}

// SampleRaiseAny is SampleRaise for callers without a stripe index in
// hand (the CLI, tests).
func (j *Journal) SampleRaiseAny(event string, fired int) {
	j.SampleRaise(stripe.Index(), event, fired)
}

// Flush forces a group commit of everything submitted so far and waits
// for it to seal. A flush with nothing pending still returns promptly
// without sealing an empty batch.
func (j *Journal) Flush() {
	if j.closed.Load() {
		return
	}
	ack := make(chan struct{})
	select {
	case j.flushCh <- ack:
		<-ack
	case <-j.done:
	}
}

// Close drains the ingress queue, seals a final batch, and closes the
// sink. Safe to call once.
func (j *Journal) Close() error {
	if j.closed.Swap(true) {
		return nil
	}
	close(j.done)
	j.wg.Wait()
	return j.sink.Close()
}

// Head returns the current chained Merkle root — the trust anchor to
// store out of band if whole-batch tail truncation must be detectable
// (see VerifyAgainst).
func (j *Journal) Head() [HashSize]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.head
}

// Stats returns a snapshot of the journal's accounting.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Submitted:     j.submitted.Load(),
		DroppedRaises: j.dropped.Load(),
		Batches:       j.batches,
		Records:       j.records,
		Bytes:         j.bytes,
	}
}

// run is the batcher worker: it drains the bounded channel, encodes
// records as they arrive (appending each frame to the sink immediately,
// so a crash leaves a recoverable unsealed tail rather than losing the
// batch), and seals on any of the three group-commit triggers — pending
// record count, pending byte size, or the flush interval.
func (j *Journal) run() {
	defer j.wg.Done()

	var (
		seq     uint64
		pending [][HashSize]byte // leaf hashes since the last seal
		pbytes  int
		frame   []byte
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	if j.cfg.FlushInterval > 0 {
		timer = time.NewTimer(j.cfg.FlushInterval)
		timer.Stop()
		defer timer.Stop()
		timerC = timer.C
	}

	armed := false
	arm := func() {
		if timer != nil && !armed {
			timer.Reset(j.cfg.FlushInterval)
			armed = true
		}
	}
	disarm := func() {
		if timer != nil && armed {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			armed = false
		}
	}

	appendRec := func(rec Record) {
		seq++
		rec.Seq = seq
		frame = AppendFrame(frame[:0], &rec)
		if err := j.sink.Append(frame); err != nil {
			return // sink failure: the record is lost; seal will surface it
		}
		pending = append(pending, leafHash(frame))
		pbytes += len(frame)
		j.mu.Lock()
		j.bytes += int64(len(frame))
		j.mu.Unlock()
		if len(pending) == 1 {
			arm()
		}
	}

	seal := func() {
		if len(pending) == 0 {
			return
		}
		disarm()
		j.mu.Lock()
		prev := j.head
		batchIdx := uint64(j.batches)
		j.mu.Unlock()
		root := chainRoot(prev, merkleRoot(pending), batchIdx)
		seq++
		sealRec := Record{
			Kind: KindSeal,
			Seq:  seq,
			A:    int64(batchIdx),
			B:    int64(len(pending)),
			Root: root[:],
		}
		frame = AppendFrame(frame[:0], &sealRec)
		if err := j.sink.Append(frame); err == nil {
			_ = j.sink.Seal()
		}
		j.mu.Lock()
		j.head = root
		j.batches++
		j.records += int64(len(pending))
		j.bytes += int64(len(frame))
		j.mu.Unlock()
		pending = pending[:0]
		pbytes = 0
	}

	for {
		select {
		case rec := <-j.ch:
			appendRec(rec)
			if len(pending) >= j.cfg.BatchRecords || pbytes >= j.cfg.BatchBytes {
				seal()
			}
		case <-timerC:
			armed = false
			seal()
		case ack := <-j.flushCh:
			// Drain whatever was already queued before acknowledging, so
			// Flush callers see everything they submitted sealed. The size
			// triggers still apply — a drain that outruns the scheduler
			// must seal the same batches an incremental worker would.
		drain:
			for {
				select {
				case rec := <-j.ch:
					appendRec(rec)
					if len(pending) >= j.cfg.BatchRecords || pbytes >= j.cfg.BatchBytes {
						seal()
					}
				default:
					break drain
				}
			}
			seal()
			close(ack)
		case <-j.done:
			for {
				select {
				case rec := <-j.ch:
					appendRec(rec)
					if len(pending) >= j.cfg.BatchRecords || pbytes >= j.cfg.BatchBytes {
						seal()
					}
				default:
					seal()
					return
				}
			}
		}
	}
}
