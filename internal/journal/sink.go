package journal

import (
	"bufio"
	"os"
	"sync"
)

// Sink is where the batcher lands encoded journal bytes. Append receives
// whole record frames as they arrive (buffered; a crash may lose or tear
// them — that is the recoverable tail). Seal is the durability barrier,
// called once per group commit immediately after the seal frame is
// appended: a file sink flushes and fsyncs, so everything up to and
// including the seal survives a crash.
//
// The interface is deliberately write-only; reading a journal back is a
// separate concern (Scan, Verify, Replay operate on an io.Reader or a
// byte snapshot), which keeps test sinks hermetic.
type Sink interface {
	// Append writes one or more encoded frames. It may buffer.
	Append(p []byte) error
	// Seal makes everything appended so far durable.
	Seal() error
	// Close seals and releases the sink.
	Close() error
}

// MemSink is an in-memory sink for hermetic tests and benchmarks. It
// records the seal count and byte offsets so group-commit behaviour is
// observable without a filesystem.
type MemSink struct {
	mu    sync.Mutex
	buf   []byte
	seals int
	// sealOffsets records the byte length of the sink at each Seal, the
	// durable prefix a crash at that instant would leave behind.
	sealOffsets []int
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink { return &MemSink{} }

// Append implements Sink.
func (s *MemSink) Append(p []byte) error {
	s.mu.Lock()
	s.buf = append(s.buf, p...)
	s.mu.Unlock()
	return nil
}

// Seal implements Sink.
func (s *MemSink) Seal() error {
	s.mu.Lock()
	s.seals++
	s.sealOffsets = append(s.sealOffsets, len(s.buf))
	s.mu.Unlock()
	return nil
}

// Close implements Sink.
func (s *MemSink) Close() error { return nil }

// Bytes returns a copy of everything appended so far.
func (s *MemSink) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf...)
}

// Seals returns how many group commits have sealed.
func (s *MemSink) Seals() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seals
}

// SealOffsets returns the durable byte lengths at each seal.
func (s *MemSink) SealOffsets() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.sealOffsets...)
}

// FileSink is the single-file segment sink: frames append through a
// buffered writer, and each seal flushes and fsyncs, so sealed batches
// are durable and a crash costs at most the unsealed tail.
type FileSink struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenFileSink opens (creating if needed) path for appending journal
// bytes.
func OpenFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f, w: bufio.NewWriterSize(f, 64<<10)}, nil
}

// Append implements Sink.
func (s *FileSink) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.w.Write(p)
	return err
}

// Seal implements Sink: flush the buffer and fsync the file.
func (s *FileSink) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close implements Sink.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
