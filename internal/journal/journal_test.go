package journal

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// fullRecord exercises every payload field at once.
func fullRecord() Record {
	return Record{
		Kind:     KindInstall,
		Seq:      12345,
		ID:       42,
		RefID:    7,
		Event:    "Net.PacketArrived",
		Module:   "TCP",
		Handler:  "TCP.Input",
		Flags:    FlagAsync | FlagFilter | 3<<OrderShift,
		Priority: 9,
		A:        -1500000000, // negative exercises zigzag
		B:        1 << 40,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []Record{
		fullRecord(),
		{Kind: KindRaise, Event: "E", A: 3},
		{Kind: KindQuota},                        // all-zero payload
		{Kind: KindSeal, Root: make([]byte, 32)}, // zero root still carried
	}
	for _, want := range cases {
		frame := AppendFrame(nil, &want)
		got, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame(%s): %v", want.Kind, err)
		}
		if n != len(frame) {
			t.Fatalf("DecodeFrame(%s) consumed %d of %d bytes", want.Kind, n, len(frame))
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.ID != want.ID ||
			got.RefID != want.RefID || got.Event != want.Event ||
			got.Module != want.Module || got.Handler != want.Handler ||
			got.Flags != want.Flags || got.Priority != want.Priority ||
			got.A != want.A || got.B != want.B || !bytes.Equal(got.Root, want.Root) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

// Every single-byte flip anywhere in a frame must be detected: the CRC
// covers kind, length, and payload.
func TestFrameDetectsEveryByteFlip(t *testing.T) {
	rec := fullRecord()
	frame := AppendFrame(nil, &rec)
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x5a
		if _, _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
}

func TestFrameTruncationDetected(t *testing.T) {
	rec := fullRecord()
	frame := AppendFrame(nil, &rec)
	for n := 0; n < len(frame); n++ {
		if _, _, err := DecodeFrame(frame[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(frame))
		}
	}
}

// buildJournal runs records through a real Journal over a MemSink with
// size-triggered seals only, returning the sealed bytes and the sink.
func buildJournal(t *testing.T, batchRecords int, recs []Record) ([]byte, *MemSink) {
	t.Helper()
	sink := NewMemSink()
	j := New(Config{Sink: sink, BatchRecords: batchRecords, FlushInterval: -1})
	for _, r := range recs {
		j.Record(r)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return sink.Bytes(), sink
}

func nRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Kind: KindInstall, ID: uint64(i + 1), Event: "E", Handler: "H"}
	}
	return recs
}

func TestGroupCommitRecordCountTrigger(t *testing.T) {
	data, sink := buildJournal(t, 4, nRecords(8))
	if got := sink.Seals(); got != 2 {
		t.Fatalf("8 records at batch=4 sealed %d times, want 2", got)
	}
	res := Scan(data)
	if res.Damaged || len(res.Batches) != 2 || len(res.Tail) != 0 {
		t.Fatalf("scan: damaged=%v batches=%d tail=%d", res.Damaged, len(res.Batches), len(res.Tail))
	}
	for i, b := range res.Batches {
		if len(b.Records) != 4 {
			t.Fatalf("batch %d has %d records, want 4", i, len(b.Records))
		}
	}
}

func TestGroupCommitByteSizeTrigger(t *testing.T) {
	sink := NewMemSink()
	// Each frame here is ~15 bytes; a 64-byte budget seals every few
	// records even though the record-count trigger is unreachable.
	j := New(Config{Sink: sink, BatchRecords: 1 << 20, BatchBytes: 64, FlushInterval: -1})
	for _, r := range nRecords(32) {
		j.Record(r)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := sink.Seals(); got < 4 {
		t.Fatalf("byte trigger sealed only %d times", got)
	}
	if _, err := Verify(sink.Bytes()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestGroupCommitIntervalTrigger(t *testing.T) {
	sink := NewMemSink()
	j := New(Config{Sink: sink, FlushInterval: 2 * time.Millisecond})
	defer j.Close()
	j.Record(Record{Kind: KindQuota, A: 1})
	deadline := time.Now().Add(2 * time.Second)
	for sink.Seals() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval trigger never sealed the pending record")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlushSealsPending(t *testing.T) {
	sink := NewMemSink()
	j := New(Config{Sink: sink, FlushInterval: -1})
	defer j.Close()
	j.Record(Record{Kind: KindQuota, A: 1})
	j.Flush()
	if sink.Seals() != 1 {
		t.Fatalf("flush sealed %d batches, want 1", sink.Seals())
	}
	// A flush with nothing pending must not seal an empty batch.
	j.Flush()
	if sink.Seals() != 1 {
		t.Fatalf("empty flush sealed a batch (%d seals)", sink.Seals())
	}
}

func TestVerifyDetectsEveryByteFlip(t *testing.T) {
	data, _ := buildJournal(t, 4, nRecords(11))
	if _, err := Verify(data); err != nil {
		t.Fatalf("Verify of pristine journal: %v", err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := Verify(mut); err == nil {
			t.Fatalf("Verify accepted a flipped byte at offset %d", i)
		}
	}
}

func TestVerifyRejectsEveryTruncation(t *testing.T) {
	data, sink := buildJournal(t, 4, nRecords(8))
	boundary := map[int]bool{0: true} // the empty journal is trivially valid
	for _, off := range sink.SealOffsets() {
		// A cut at exactly a seal boundary leaves a well-formed shorter
		// journal — the one truncation chaining alone cannot fault. That
		// case is the head anchor's job (see
		// TestVerifyAgainstDetectsWholeBatchTruncation).
		boundary[off] = true
	}
	for n := 0; n < len(data); n++ {
		if boundary[n] {
			continue
		}
		if _, err := Verify(data[:n]); err == nil {
			t.Fatalf("Verify accepted truncation to %d/%d bytes", n, len(data))
		}
	}
}

func TestVerifyAgainstDetectsWholeBatchTruncation(t *testing.T) {
	data, sink := buildJournal(t, 4, nRecords(8))
	offsets := sink.SealOffsets()
	if len(offsets) != 2 {
		t.Fatalf("want 2 seal offsets, got %v", offsets)
	}
	var head [HashSize]byte
	rep, err := Verify(data)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	head = rep.Head
	// Dropping the trailing sealed batch leaves a journal Verify alone
	// cannot fault — chaining only binds each batch to its past. The
	// out-of-band head anchor closes that gap.
	pruned := data[:offsets[0]]
	if _, err := Verify(pruned); err != nil {
		t.Fatalf("Verify of pruned journal should pass (prefix is intact): %v", err)
	}
	if _, err := VerifyAgainst(pruned, head); err == nil {
		t.Fatal("VerifyAgainst accepted a journal missing its last sealed batch")
	}
	if _, err := VerifyAgainst(data, head); err != nil {
		t.Fatalf("VerifyAgainst of full journal: %v", err)
	}
}

func TestHeadMatchesFinalSeal(t *testing.T) {
	sink := NewMemSink()
	j := New(Config{Sink: sink, BatchRecords: 4, FlushInterval: -1})
	for _, r := range nRecords(8) {
		j.Record(r)
	}
	j.Flush()
	head := j.Head()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := Scan(sink.Bytes())
	if len(res.Batches) == 0 {
		t.Fatal("no sealed batches")
	}
	if res.Batches[len(res.Batches)-1].Root != head {
		t.Fatal("Journal.Head does not match the final seal's chained root")
	}
}

// The crash-consistency sweep: a journal that ends in an unsealed tail,
// cut at every byte boundary, must always scan back to exactly the
// sealed prefix without panicking — the tail is reported, never trusted.
func TestCrashTruncationSweep(t *testing.T) {
	sealed, _ := buildJournal(t, 4, nRecords(4)) // one sealed batch
	// Append an unsealed tail the way a crashed batcher would have left
	// it: frames written through the sink with no seal record.
	data := append([]byte(nil), sealed...)
	for i := 0; i < 3; i++ {
		rec := Record{Kind: KindUninstall, Seq: uint64(100 + i), ID: uint64(i + 1), Event: "E"}
		data = AppendFrame(data, &rec)
	}
	for cut := len(sealed); cut <= len(data); cut++ {
		res := Scan(data[:cut])
		if res.Damaged {
			t.Fatalf("cut at %d (sealed prefix %d): scan reported damage: %v", cut, len(sealed), res.Err)
		}
		if len(res.Batches) != 1 || len(res.Batches[0].Records) != 4 {
			t.Fatalf("cut at %d: recovered %d batches, want the 1 sealed batch intact", cut, len(res.Batches))
		}
		if len(res.Tail) > 3 {
			t.Fatalf("cut at %d: impossible tail of %d records", cut, len(res.Tail))
		}
		// Replay of the cut journal must reproduce exactly the sealed
		// prefix.
		st := NewState()
		sum, err := Replay(data[:cut], st)
		if err != nil {
			t.Fatalf("cut at %d: replay: %v", cut, err)
		}
		if sum.Records != 4 || sum.Batches != 1 {
			t.Fatalf("cut at %d: replayed %d records in %d batches, want 4 in 1", cut, sum.Records, sum.Batches)
		}
		if got := len(st.Bindings("E")); got != 4 {
			t.Fatalf("cut at %d: state has %d bindings, want 4 (tail uninstalls must not apply)", cut, got)
		}
	}
	// Cutting inside the sealed region must never yield MORE state: the
	// scan either degrades to a shorter sealed prefix (here: none) or
	// reports damage. It must not panic.
	for cut := 0; cut < len(sealed); cut++ {
		res := Scan(data[:cut])
		if len(res.Batches) != 0 {
			t.Fatalf("cut at %d inside the only batch produced %d sealed batches", cut, len(res.Batches))
		}
	}
}

// An in-place edit mid-journal is distinguishable from a crash: intact
// frames follow the damage, so Scan reports Damaged instead of a tail.
func TestScanDistinguishesTamperFromCrash(t *testing.T) {
	data, sink := buildJournal(t, 4, nRecords(8))
	off := sink.SealOffsets()[0]
	mut := append([]byte(nil), data...)
	mut[off+2] ^= 0xff // inside the second batch's first record
	res := Scan(mut)
	if !res.Damaged {
		t.Fatal("mid-journal edit scanned as a clean crash tail")
	}
	if len(res.Batches) != 1 {
		t.Fatalf("sealed prefix before the damage should survive: got %d batches", len(res.Batches))
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	path := t.TempDir() + "/j.sj"
	sink, err := OpenFileSink(path)
	if err != nil {
		t.Fatalf("OpenFileSink: %v", err)
	}
	j := New(Config{Sink: sink, BatchRecords: 4, FlushInterval: -1})
	for _, r := range nRecords(8) {
		j.Record(r)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	rep, err := Verify(data)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Records != 8 {
		t.Fatalf("file journal carries %d records, want 8", rep.Records)
	}
}

func TestReplayStateReconstructs(t *testing.T) {
	recs := []Record{
		{Kind: KindInstall, ID: 1, Event: "E", Module: "M", Handler: "M.A"},
		{Kind: KindInstall, ID: 2, Event: "E", Module: "M", Handler: "M.B", Flags: 1 << OrderShift},           // first
		{Kind: KindInstall, ID: 3, Event: "E", Module: "N", Handler: "N.C", RefID: 1, Flags: 3 << OrderShift}, // before #1
		{Kind: KindQuarantine, ID: 3, Event: "E"},
		{Kind: KindQuota, A: 8, B: 64},
		{Kind: KindDegrade, Event: "shed-optional", A: 0, B: 1},
		{Kind: KindModuleQuarantine, Module: "N"},
		{Kind: KindRaise, Event: "E", A: 2},
	}
	data, _ := buildJournal(t, len(recs), recs)
	st := NewState()
	if _, err := Replay(data, st); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if got, want := st.Bindings("E"), []uint64{2, 3, 1}; len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
	if _, q, ok := st.Binding(3); !ok || !q {
		t.Fatalf("binding 3 quarantined=%v ok=%v, want quarantined", q, ok)
	}
	if pm, g := st.Quotas(); pm != 8 || g != 64 {
		t.Fatalf("quotas %d/%d, want 8/64", pm, g)
	}
	if st.Level() != 1 {
		t.Fatalf("level %d, want 1", st.Level())
	}
	if mods := st.QuarantinedModules(); len(mods) != 1 || mods[0] != "N" {
		t.Fatalf("quarantined modules %v, want [N]", mods)
	}
	if st.Raises() != 1 {
		t.Fatalf("raises %d, want 1", st.Raises())
	}
}

func TestSampleEveryRoundsToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024},
	} {
		j := New(Config{Sink: NewMemSink(), SampleRaises: c.in, FlushInterval: -1})
		if got := j.SampleEvery(); got != c.want {
			t.Errorf("SampleRaises=%d: SampleEvery=%d, want %d", c.in, got, c.want)
		}
		j.Close()
	}
}

func TestSampleCountOffNeverSamples(t *testing.T) {
	j := New(Config{Sink: NewMemSink(), FlushInterval: -1})
	defer j.Close()
	for _, n := range []uint64{1, 2, 1024, 1 << 40} {
		if j.SampleCount(n) {
			t.Fatalf("sampling-off journal sampled at n=%d", n)
		}
	}
	on := New(Config{Sink: NewMemSink(), SampleRaises: 4, FlushInterval: -1})
	defer on.Close()
	hits := 0
	for n := uint64(1); n <= 64; n++ {
		if on.SampleCount(n) {
			hits++
		}
	}
	if hits != 16 {
		t.Fatalf("1-in-4 sampling hit %d of 64, want 16", hits)
	}
}

func TestSchemaDocCoversAllKinds(t *testing.T) {
	doc := SchemaDoc()
	for k := KindInstall; k <= KindSeal; k++ {
		if !strings.Contains(doc, k.String()) {
			t.Errorf("SchemaDoc does not mention kind %q", k)
		}
	}
}

func TestRecordAfterCloseDropped(t *testing.T) {
	sink := NewMemSink()
	j := New(Config{Sink: sink, FlushInterval: -1})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j.Record(Record{Kind: KindQuota, A: 1}) // must not block or panic
	j.SampleHit("E", 1)
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if len(sink.Bytes()) != 0 {
		t.Fatal("records accepted after Close")
	}
}

func TestDecodeRejectsBadKind(t *testing.T) {
	rec := Record{Kind: KindQuota, A: 1}
	frame := AppendFrame(nil, &rec)
	frame[0] = byte(KindSeal) + 7
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrBadKind) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad kind byte decoded with err=%v", err)
	}
}
