package journal

import (
	"fmt"
	"sort"
	"strings"
)

// Applier consumes replayed records in journal order. The dispatcher's
// live applier (dispatch.ReplayApplier) re-drives installs through the
// plan-compile path; State is the pure symbolic twin for auditing
// without a dispatcher.
type Applier interface {
	Apply(rec Record) error
}

// Summary reports what a replay covered.
type Summary struct {
	// Batches and Records count the sealed prefix replayed.
	Batches int
	Records int
	// Tail counts valid unsealed records after the last seal. They are
	// NOT replayed: only sealed (fsynced, chain-verified) history is
	// trusted at boot.
	Tail int
	// Damaged is set when the journal ends in damage rather than a clean
	// seal boundary or crash tail; the sealed prefix was still replayed.
	Damaged bool
}

// Replay re-drives a journal's sealed records, in order, through a. It
// stops with an error on the first record the applier rejects (a journal
// and boot image that disagree are not a state to limp into). Unsealed
// tail records are reported in the summary but never applied, so a
// crash-recovered boot reconstructs exactly the durable prefix — replay
// of the same sealed journal is idempotent because it always re-derives
// the same state from the same prefix.
func Replay(data []byte, a Applier) (Summary, error) {
	res := Scan(data)
	sum := Summary{
		Batches: len(res.Batches),
		Tail:    len(res.Tail),
		Damaged: res.Damaged,
	}
	for bi := range res.Batches {
		for ri := range res.Batches[bi].Records {
			rec := res.Batches[bi].Records[ri]
			if err := a.Apply(rec); err != nil {
				return sum, fmt.Errorf("journal: replay of record %d (batch %d, %s): %w",
					rec.Seq, bi, rec.Kind, err)
			}
			sum.Records++
		}
	}
	return sum, nil
}

// bindingState is one live binding in the symbolic replay state.
type bindingState struct {
	ID          uint64
	Event       string
	Module      string
	Handler     string
	Flags       uint32
	Priority    int32
	Quarantined bool
	Probation   bool
}

// State is the pure replay state machine: it reconstructs the
// binding/quarantine/quota/degradation picture a live dispatcher would
// hold, without needing handler code. cmd/spinjournal uses it for the
// replay subcommand; the differential tests use it as an oracle against
// the live dispatcher.
type State struct {
	bindings  map[uint64]*bindingState
	order     map[string][]uint64 // event -> binding IDs in dispatch order
	qModules  map[string]bool
	perModule int64
	global    int64
	level     int64
	levelName string
	raises    int
	moves     int
}

// NewState returns an empty symbolic state.
func NewState() *State {
	return &State{
		bindings: make(map[uint64]*bindingState),
		order:    make(map[string][]uint64),
		qModules: make(map[string]bool),
	}
}

// Apply implements Applier.
func (s *State) Apply(rec Record) error {
	switch rec.Kind {
	case KindInstall:
		if rec.ID == 0 {
			return fmt.Errorf("install record without binding ID")
		}
		b := &bindingState{
			ID: rec.ID, Event: rec.Event, Module: rec.Module,
			Handler: rec.Handler, Flags: rec.Flags, Priority: rec.Priority,
		}
		s.bindings[rec.ID] = b
		if rec.Flags&FlagDefault != 0 {
			return nil // default handlers are not on the dispatch-order list
		}
		ids := s.order[rec.Event]
		switch OrderKind(rec.Flags) {
		case 1: // first
			ids = append([]uint64{rec.ID}, ids...)
		case 3, 4: // before/after ref
			pos := -1
			for i, id := range ids {
				if id == rec.RefID {
					pos = i
					break
				}
			}
			if pos < 0 {
				ids = append(ids, rec.ID)
				break
			}
			if OrderKind(rec.Flags) == 4 {
				pos++
			}
			ids = append(ids, 0)
			copy(ids[pos+1:], ids[pos:])
			ids[pos] = rec.ID
		default: // unordered, last
			ids = append(ids, rec.ID)
		}
		s.order[rec.Event] = ids
	case KindUninstall:
		b, ok := s.bindings[rec.ID]
		if !ok {
			return fmt.Errorf("uninstall of unknown binding %d", rec.ID)
		}
		delete(s.bindings, rec.ID)
		ids := s.order[b.Event]
		for i, id := range ids {
			if id == rec.ID {
				s.order[b.Event] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
	case KindSetOrder:
		b, ok := s.bindings[rec.ID]
		if !ok {
			return fmt.Errorf("set-order of unknown binding %d", rec.ID)
		}
		ids := s.order[b.Event]
		for i, id := range ids {
			if id == rec.ID {
				ids = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		switch OrderKind(rec.Flags) {
		case 1:
			ids = append([]uint64{rec.ID}, ids...)
		case 3, 4:
			pos := -1
			for i, id := range ids {
				if id == rec.RefID {
					pos = i
					break
				}
			}
			if pos < 0 {
				ids = append(ids, rec.ID)
				break
			}
			if OrderKind(rec.Flags) == 4 {
				pos++
			}
			ids = append(ids, 0)
			copy(ids[pos+1:], ids[pos:])
			ids[pos] = rec.ID
		default:
			ids = append(ids, rec.ID)
		}
		s.order[b.Event] = ids
	// The journal records effects, not intents: a module quarantine is
	// journaled as one module marker (the install-denial set) plus a
	// per-binding KindQuarantine for every binding it actually flipped,
	// so replay never has to re-derive which bindings a module operation
	// touched.
	case KindQuarantine:
		if b, ok := s.bindings[rec.ID]; ok {
			b.Quarantined, b.Probation = true, false
		}
	case KindProbation:
		if b, ok := s.bindings[rec.ID]; ok {
			b.Quarantined, b.Probation = false, true
		}
	case KindRestore:
		if b, ok := s.bindings[rec.ID]; ok {
			b.Quarantined, b.Probation = false, false
		}
	case KindModuleQuarantine:
		s.qModules[rec.Module] = true
	case KindModuleReadmit:
		delete(s.qModules, rec.Module)
	case KindDegrade:
		s.level = rec.B
		s.levelName = rec.Event
	case KindQuota:
		s.perModule, s.global = rec.A, rec.B
	case KindRaise:
		s.raises++
	case KindShardMove:
		// An audit marker: the binding population change it explains
		// arrives as ordinary uninstall/install records on each shard.
		s.moves++
	case KindSeal:
		// seals never reach appliers
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	return nil
}

// Summary renders the reconstructed state, deterministically ordered.
func (s *State) Summary() string {
	var sb strings.Builder
	events := make([]string, 0, len(s.order))
	for ev, ids := range s.order {
		if len(ids) > 0 {
			events = append(events, ev)
		}
	}
	sort.Strings(events)
	fmt.Fprintf(&sb, "events with bindings: %d\n", len(events))
	for _, ev := range events {
		fmt.Fprintf(&sb, "  %s:\n", ev)
		for _, id := range s.order[ev] {
			b := s.bindings[id]
			if b == nil {
				continue
			}
			state := ""
			if b.Quarantined {
				state = " [quarantined]"
			} else if b.Probation {
				state = " [probation]"
			}
			fmt.Fprintf(&sb, "    #%d %s (%s) flags=%#x pri=%d%s\n",
				b.ID, b.Handler, b.Module, b.Flags, b.Priority, state)
		}
	}
	mods := make([]string, 0, len(s.qModules))
	for m := range s.qModules {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	fmt.Fprintf(&sb, "quarantined modules: %v\n", mods)
	fmt.Fprintf(&sb, "quotas: per-module=%d global=%d\n", s.perModule, s.global)
	fmt.Fprintf(&sb, "degradation level: %d (%s)\n", s.level, s.levelName)
	fmt.Fprintf(&sb, "sampled raises: %d\n", s.raises)
	if s.moves > 0 {
		fmt.Fprintf(&sb, "shard moves: %d\n", s.moves)
	}
	return sb.String()
}

// Bindings returns the live (installed) binding IDs for an event in
// dispatch order, for tests.
func (s *State) Bindings(event string) []uint64 {
	return append([]uint64(nil), s.order[event]...)
}

// Binding returns the symbolic state for a binding ID, for tests.
func (s *State) Binding(id uint64) (handler string, quarantined, ok bool) {
	b, found := s.bindings[id]
	if !found {
		return "", false, false
	}
	return b.Handler, b.Quarantined, true
}

// Level returns the reconstructed degradation level.
func (s *State) Level() int { return int(s.level) }

// Quotas returns the reconstructed quota limits.
func (s *State) Quotas() (perModule, global int) { return int(s.perModule), int(s.global) }

// QuarantinedModules returns the reconstructed module-quarantine set.
func (s *State) QuarantinedModules() []string {
	mods := make([]string, 0, len(s.qModules))
	for m := range s.qModules {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	return mods
}

// Raises returns the count of sampled raise records seen.
func (s *State) Raises() int { return s.raises }

// Moves returns the count of shard-move audit markers seen.
func (s *State) Moves() int { return s.moves }
