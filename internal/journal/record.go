package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind discriminates journal records. Every dispatcher lifecycle
// transition gets its own kind; KindRaise is the sampled data-plane
// record; KindSeal terminates a batch and carries the chained Merkle
// root.
type Kind uint8

const (
	// KindInstall records a handler installation (including the
	// intrinsic binding created at event definition, marked
	// FlagIntrinsic, and default handlers, marked FlagDefault).
	KindInstall Kind = iota + 1
	// KindUninstall records a handler removal.
	KindUninstall
	// KindSetOrder records a dynamic ordering-constraint change.
	KindSetOrder
	// KindQuarantine records a binding compiled out of its event's plan
	// (fault budget exhausted, or an operator/replay forcing).
	KindQuarantine
	// KindProbation records a quarantined binding re-admitted on
	// probation.
	KindProbation
	// KindRestore records a probation binding restored to full health.
	KindRestore
	// KindModuleQuarantine records a module denied installations with
	// all its bindings compiled out.
	KindModuleQuarantine
	// KindModuleReadmit records a module quarantine lifted.
	KindModuleReadmit
	// KindDegrade records a degradation-level transition (A = from,
	// B = to, Event = level name).
	KindDegrade
	// KindQuota records a runtime change to the installation quotas
	// (A = per-module, B = global; zero means unlimited).
	KindQuota
	// KindRaise is a 1-in-N sampled raise record (A = handlers fired).
	KindRaise
	// KindSeal terminates a batch: A = batch index, B = record count,
	// Root = the chained Merkle root sealing every record since the
	// previous seal.
	KindSeal
	// KindShardMove is the resharding audit marker: the named event moved
	// between dispatcher shards (A = source shard, B = destination shard).
	// The shard router records it on both shards' journals, bracketing the
	// uninstall/re-install records the move emits through the normal
	// lifecycle paths; replay treats it as an annotation, not an operation.
	KindShardMove
)

// maxKind bounds the decoder's kind validation; appended kinds must extend
// it so older journals (whose kinds are a prefix) stay readable forever.
const maxKind = KindShardMove

//spinvet:pure
func (k Kind) String() string {
	switch k {
	case KindInstall:
		return "install"
	case KindUninstall:
		return "uninstall"
	case KindSetOrder:
		return "set-order"
	case KindQuarantine:
		return "quarantine"
	case KindProbation:
		return "probation"
	case KindRestore:
		return "restore"
	case KindModuleQuarantine:
		return "module-quarantine"
	case KindModuleReadmit:
		return "module-readmit"
	case KindDegrade:
		return "degrade"
	case KindQuota:
		return "quota"
	case KindRaise:
		return "raise"
	case KindSeal:
		return "seal"
	case KindShardMove:
		return "shard-move"
	}
	return "kind(?)"
}

// Binding-shape flags carried on KindInstall records (low byte); the
// ordering-constraint kind occupies bits 8..11.
const (
	FlagAsync     uint32 = 1 << 0
	FlagEphemeral uint32 = 1 << 1
	FlagFilter    uint32 = 1 << 2
	FlagIntrinsic uint32 = 1 << 3
	FlagDefault   uint32 = 1 << 4

	// OrderShift positions the ordering kind inside Flags: 0 unordered,
	// 1 first, 2 last, 3 before, 4 after (dispatch.OrderKind values).
	OrderShift = 8
	orderMask  = 0xF
)

// OrderKind extracts the ordering-constraint kind from install flags.
//
//spinvet:pure
func OrderKind(flags uint32) int { return int(flags>>OrderShift) & orderMask }

// Record is one journal entry. The field set is the superset across
// kinds; the per-kind meaning of the generic fields is documented on the
// Kind constants and in Schema.
type Record struct {
	Kind Kind
	// Seq is the journal-assigned monotonic sequence number.
	Seq uint64
	// ID identifies the binding a lifecycle record concerns; install
	// records define it, later records reference it.
	ID uint64
	// RefID carries the ordering-constraint reference binding for
	// Before/After installs and SetOrder records.
	RefID uint64
	// Event is the event name (or a kind-specific label: the level name
	// on KindDegrade records).
	Event string
	// Module is the installing module's name.
	Module string
	// Handler is the handler procedure's qualified name.
	Handler string
	// Flags carries the binding shape and ordering kind (install,
	// set-order).
	Flags uint32
	// Priority is the binding's degradation priority class.
	Priority int32
	// A and B are kind-specific integers: the EPHEMERAL/async deadline
	// in nanoseconds (install), from/to levels (degrade), per-module and
	// global limits (quota), handlers fired (raise), batch index and
	// record count (seal).
	A, B int64
	// Root is the chained Merkle root on KindSeal records, empty
	// otherwise.
	Root []byte
}

// Field identifiers for the self-describing payload encoding. A field is
// encoded as a key uvarint (id<<1 | wire) followed by a uvarint (wire 0)
// or a length-prefixed byte string (wire 1). Decoders skip unknown
// fields, so the framing is forward-compatible.
const (
	fieldSeq      = 1 // uvarint
	fieldID       = 2 // uvarint
	fieldRefID    = 3 // uvarint
	fieldEvent    = 4 // string
	fieldModule   = 5 // string
	fieldHandler  = 6 // string
	fieldFlags    = 7 // uvarint
	fieldPriority = 8 // uvarint (non-negative by construction)
	fieldA        = 9 // zigzag uvarint
	fieldB        = 10
	fieldRoot     = 11 // bytes
)

// crcTable is the Castagnoli table; CRC-32C has hardware support on the
// platforms this targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func putField(dst []byte, id int, v uint64) []byte {
	if v == 0 {
		return dst // zero fields are omitted; decode defaults them
	}
	dst = putUvarint(dst, uint64(id)<<1)
	return putUvarint(dst, v)
}

func putStringField(dst []byte, id int, s string) []byte {
	if s == "" {
		return dst
	}
	dst = putUvarint(dst, uint64(id)<<1|1)
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBytesField(dst []byte, id int, b []byte) []byte {
	if len(b) == 0 {
		return dst
	}
	dst = putUvarint(dst, uint64(id)<<1|1)
	dst = putUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// zigzag folds signed integers into unsigned space, small magnitudes
// first.
//
//spinvet:pure
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

//spinvet:pure
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendFrame encodes rec as one framed record onto dst and returns the
// extended slice. Frame layout:
//
//	kind:1 | payloadLen:uvarint | payload | crc32c:4 (little-endian)
//
// The CRC covers kind, length, and payload, so a single corrupted byte
// anywhere in the frame is detected at decode.
func AppendFrame(dst []byte, rec *Record) []byte {
	var payload [192]byte
	p := payload[:0]
	p = putField(p, fieldSeq, rec.Seq)
	p = putField(p, fieldID, rec.ID)
	p = putField(p, fieldRefID, rec.RefID)
	p = putStringField(p, fieldEvent, rec.Event)
	p = putStringField(p, fieldModule, rec.Module)
	p = putStringField(p, fieldHandler, rec.Handler)
	p = putField(p, fieldFlags, uint64(rec.Flags))
	p = putField(p, fieldPriority, uint64(rec.Priority))
	p = putField(p, fieldA, zigzag(rec.A))
	p = putField(p, fieldB, zigzag(rec.B))
	p = putBytesField(p, fieldRoot, rec.Root)

	start := len(dst)
	dst = append(dst, byte(rec.Kind))
	dst = putUvarint(dst, uint64(len(p)))
	dst = append(dst, p...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// Framing errors.
var (
	// ErrTruncated reports a frame cut off by the end of input — the
	// signature of a crash mid-append, recoverable to the sealed prefix.
	ErrTruncated = fmt.Errorf("journal: truncated frame")
	// ErrCorrupt reports a frame whose CRC does not match its bytes — an
	// in-place edit or bit rot.
	ErrCorrupt = fmt.Errorf("journal: frame CRC mismatch")
	// ErrBadKind reports an out-of-range record kind byte.
	ErrBadKind = fmt.Errorf("journal: unknown record kind")
)

// DecodeFrame decodes one frame from the front of buf, returning the
// record and the number of bytes consumed. Unknown payload fields are
// skipped, so newer writers stay readable.
func DecodeFrame(buf []byte) (Record, int, error) {
	var rec Record
	if len(buf) < 1 {
		return rec, 0, ErrTruncated
	}
	kind := Kind(buf[0])
	if kind == 0 || kind > maxKind {
		return rec, 0, fmt.Errorf("%w: %d", ErrBadKind, buf[0])
	}
	plen, n := binary.Uvarint(buf[1:])
	if n <= 0 {
		return rec, 0, ErrTruncated
	}
	head := 1 + n
	if plen > uint64(len(buf)-head) {
		return rec, 0, ErrTruncated
	}
	frameLen := head + int(plen)
	if len(buf) < frameLen+4 {
		return rec, 0, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(buf[frameLen:])
	if crc32.Checksum(buf[:frameLen], crcTable) != want {
		return rec, 0, ErrCorrupt
	}
	rec.Kind = kind
	p := buf[head:frameLen]
	for len(p) > 0 {
		key, kn := binary.Uvarint(p)
		if kn <= 0 {
			return rec, 0, ErrCorrupt
		}
		p = p[kn:]
		if key&1 == 1 { // length-prefixed bytes
			slen, sn := binary.Uvarint(p)
			if sn <= 0 || slen > uint64(len(p)-sn) {
				return rec, 0, ErrCorrupt
			}
			val := p[sn : sn+int(slen)]
			p = p[sn+int(slen):]
			switch key >> 1 {
			case fieldEvent:
				rec.Event = string(val)
			case fieldModule:
				rec.Module = string(val)
			case fieldHandler:
				rec.Handler = string(val)
			case fieldRoot:
				rec.Root = append([]byte(nil), val...)
			}
			continue
		}
		v, vn := binary.Uvarint(p)
		if vn <= 0 {
			return rec, 0, ErrCorrupt
		}
		p = p[vn:]
		switch key >> 1 {
		case fieldSeq:
			rec.Seq = v
		case fieldID:
			rec.ID = v
		case fieldRefID:
			rec.RefID = v
		case fieldFlags:
			rec.Flags = uint32(v)
		case fieldPriority:
			rec.Priority = int32(v)
		case fieldA:
			rec.A = unzigzag(v)
		case fieldB:
			rec.B = unzigzag(v)
		}
	}
	return rec, frameLen + 4, nil
}
