package journal

import (
	"fmt"
	"strings"
)

// KindDoc documents one record kind for the generated schema docs.
type KindDoc struct {
	Kind   Kind
	Name   string
	Fields string // per-kind meaning of the generic fields
}

// SchemaKinds enumerates every record kind with its field semantics, in
// wire order. cmd/spindoc renders this table so the on-disk format is
// documented from the same source of truth the encoder uses.
//
//spinvet:pure
func SchemaKinds() []KindDoc {
	return []KindDoc{
		{KindInstall, KindInstall.String(), "ID=binding, RefID=order ref, Event, Module, Handler, Flags=shape|order<<8, Priority, A=deadline ns"},
		{KindUninstall, KindUninstall.String(), "ID=binding, Event"},
		{KindSetOrder, KindSetOrder.String(), "ID=binding, RefID=order ref, Flags=order<<8"},
		{KindQuarantine, KindQuarantine.String(), "ID=binding, Event, Handler, A=quarantine level"},
		{KindProbation, KindProbation.String(), "ID=binding, Event, Handler"},
		{KindRestore, KindRestore.String(), "ID=binding, Event, Handler"},
		{KindModuleQuarantine, KindModuleQuarantine.String(), "Module, A=quarantine level"},
		{KindModuleReadmit, KindModuleReadmit.String(), "Module"},
		{KindDegrade, KindDegrade.String(), "Event=level name, A=from, B=to"},
		{KindQuota, KindQuota.String(), "A=per-module limit, B=global limit (0 = unlimited)"},
		{KindRaise, KindRaise.String(), "Event, A=handlers fired (1-in-N sampled)"},
		{KindSeal, KindSeal.String(), "A=batch index, B=record count, Root=chained Merkle root"},
		{KindShardMove, KindShardMove.String(), "Event, A=source shard, B=destination shard (audit marker)"},
	}
}

// SchemaDoc renders the journal's on-disk format: the frame layout, the
// self-describing field encoding, the seal chaining, and the per-kind
// field semantics. It is generated from the same tables the encoder
// uses, so it cannot drift from the wire format.
func SchemaDoc() string {
	var sb strings.Builder
	sb.WriteString(`journal record schema (spin-journal/v1)

frame    kind:1 | payloadLen:uvarint | payload | crc32c:4 (LE)
         the CRC covers kind, length, and payload
payload  sequence of fields: key:uvarint (fieldID<<1 | wire), then
         wire 0: value uvarint        wire 1: len uvarint + bytes
         zero/empty fields are omitted; unknown fields are skipped
fields   1 seq  2 id  3 refid  4 event*  5 module*  6 handler*
         7 flags  8 priority  9 a(zigzag)  10 b(zigzag)  11 root*
         (* = wire 1)
flags    bit0 async, bit1 ephemeral, bit2 filter, bit3 intrinsic,
         bit4 default; bits 8..11 ordering kind (0 unordered, 1 first,
         2 last, 3 before, 4 after)
sealing  each batch ends with a seal record carrying
         chain(i) = sha256(0x02 | chain(i-1) | merkle(frames) | i)
         over sha256(0x00|frame) leaves and sha256(0x01|l|r) nodes;
         chain(-1) is 32 zero bytes. The sink fsyncs at each seal.
verify   journal.Verify rejects any in-place edit, mid-file truncation,
         or unsealed tail; journal.Scan recovers the sealed prefix
         after a crash; journal.VerifyAgainst pins the head root.

record kinds:
`)
	for _, k := range SchemaKinds() {
		fmt.Fprintf(&sb, "  %2d %-18s %s\n", k.Kind, k.Name, k.Fields)
	}
	sb.WriteString(`
pure API (//spinvet:pure, safe inside FUNCTIONAL guards):
  Kind.String, OrderKind, SchemaKinds
`)
	return sb.String()
}
