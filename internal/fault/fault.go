// Package fault is the dispatcher's fault-isolation and extension-lifecycle
// subsystem. The paper treats extensions as untrusted peers of the kernel:
// EPHEMERAL handlers "may be safely terminated at any point" (§2.4) and a
// misbehaving handler can be dynamically uninstalled — but the paper leaves
// the policy of *when* to the event's authority. This package supplies that
// policy layer: every handler misbehavior (panic, deadline overrun,
// virtual-time overrun) becomes a Record in a Ledger; per-binding and
// per-module fault budgets turn repeated misbehavior into an Action
// (quarantine the binding, or the whole module); probation re-admits
// quarantined bindings with a tightened budget and exponential backoff, and
// re-quarantines them on relapse.
//
// The ledger is deliberately mechanism-free: it never touches the
// dispatcher. Keys are opaque (the dispatcher uses *Binding and
// *rtti.Module pointers), and an Action only reports what the policy
// decided; the dispatcher carries it out by recompiling the event's
// dispatch plan without the quarantined binding and publishing it through
// the same atomic plan swap installations use — so the no-fault fast path
// carries no fault-handling instructions at all (see DESIGN.md decision 12).
package fault

import (
	"fmt"
	"sync"
	"time"

	"spin/internal/vtime"
)

// Kind discriminates fault records.
type Kind uint8

const (
	// KindPanic is a recovered panic in a handler or guard.
	KindPanic Kind = iota + 1
	// KindDeadline is a watchdog deadline overrun (EPHEMERAL or async
	// handlers with a wall-clock deadline).
	KindDeadline
	// KindOverrun is a synchronous handler exceeding its virtual-time
	// budget (metered dispatchers only).
	KindOverrun
	// KindBadResult is a handler returning a malformed result (currently
	// raised only by the injection harness).
	KindBadResult
	// KindCompare is an observational record: the purity monitor recovered
	// a panic while comparing guard argument snapshots. It never counts
	// against a budget — it documents what the old silent recover() threw
	// away.
	KindCompare
	// KindRemote is an observational record from the remote-raise layer: a
	// peer circuit breaker tripped (deadline exhaustion, connection loss,
	// or heartbeat-declared partition). It charges the peer's failure
	// domain in the ledger without counting against any local handler's
	// budget.
	KindRemote
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDeadline:
		return "deadline"
	case KindOverrun:
		return "overrun"
	case KindBadResult:
		return "bad-result"
	case KindCompare:
		return "compare"
	case KindRemote:
		return "remote"
	}
	return "fault(?)"
}

// Origin locates a fault within dispatch.
type Origin uint8

const (
	// OriginHandler is a fault inside a handler body.
	OriginHandler Origin = iota
	// OriginGuard is a fault inside a guard predicate.
	OriginGuard
)

func (o Origin) String() string {
	if o == OriginGuard {
		return "guard"
	}
	return "handler"
}

// State is a binding's (or module's) lifecycle state under fault policy.
type State uint8

const (
	// Healthy bindings dispatch normally.
	Healthy State = iota
	// Quarantined bindings are compiled out of their event's dispatch
	// plan; readmission is pending backoff expiry.
	Quarantined
	// Probation bindings dispatch again, under a tightened budget; a
	// relapse re-quarantines with doubled backoff.
	Probation
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	}
	return "state(?)"
}

// Record is one captured fault.
type Record struct {
	// Seq is the ledger-wide capture sequence (1-based).
	Seq uint64
	// Kind and Origin classify the fault.
	Kind   Kind
	Origin Origin
	// Event and Handler name where the fault occurred; Module names the
	// handler's installing module ("" when anonymous).
	Event   string
	Handler string
	Module  string
	// Value is the recovered panic value (KindPanic, KindCompare).
	Value any
	// Stack is the goroutine stack captured at recovery (nil for
	// deadline and overrun records).
	Stack []byte
	// Cost is the virtual-time cost observed (KindOverrun), or the
	// configured deadline (KindDeadline).
	Cost vtime.Duration
}

func (r Record) String() string {
	s := fmt.Sprintf("#%d %s %s %s", r.Seq, r.Kind, r.Origin, r.Handler)
	if r.Event != "" {
		s += " on " + r.Event
	}
	if r.Value != nil {
		s += fmt.Sprintf(": %v", r.Value)
	}
	if r.Cost > 0 {
		s += fmt.Sprintf(" (%v)", r.Cost)
	}
	return s
}

// Policy configures fault budgets and lifecycle timing. The zero value is
// record-only: faults are captured in the ledger but never quarantine
// anything (Budget 0 disables enforcement).
type Policy struct {
	// Budget is the number of budgeted faults a healthy binding may
	// accumulate before being quarantined (the Budget-th fault triggers).
	// Zero disables quarantine entirely (record-only).
	Budget int
	// ProbationBudget is the tightened budget applied during probation;
	// zero selects 1 (a single relapse re-quarantines).
	ProbationBudget int
	// ModuleBudget bounds the total budgeted faults across all of one
	// module's bindings; exceeding it quarantines the whole module. Zero
	// disables module-level quarantine.
	ModuleBudget int
	// Backoff is the initial quarantine duration before probation; zero
	// selects 100ms. On a simulated machine it elapses in virtual time.
	Backoff time.Duration
	// BackoffFactor multiplies the backoff on each relapse; values below 2
	// select 2.
	BackoffFactor int
	// MaxBackoff caps the backoff growth; zero selects 100 * Backoff.
	MaxBackoff time.Duration
	// Probation is how long a re-admitted binding must stay fault-free
	// before being restored to full health; zero selects Backoff.
	Probation time.Duration
	// AsyncDeadline is the default wall-clock watchdog deadline applied to
	// asynchronous handlers that did not declare one; zero leaves async
	// handlers unwatched.
	AsyncDeadline time.Duration
	// SyncBudget is the virtual-time budget for one synchronous handler
	// invocation on a metered dispatcher; exceeding it records a
	// KindOverrun fault. Zero disables overrun accounting.
	SyncBudget vtime.Duration
	// History is the ledger's record ring capacity; zero selects 256.
	History int
	// OnFault, when non-nil, observes every record as it is captured.
	// Called with the ledger unlocked; must not block dispatch for long.
	OnFault func(Record)
}

// DefaultPolicy returns an enforcing policy with conventional settings:
// three faults quarantine a binding, probation tolerates none, backoff
// starts at 100ms and doubles per relapse.
func DefaultPolicy() Policy {
	return Policy{Budget: 3, ProbationBudget: 1, Backoff: 100 * time.Millisecond}
}

// Enforcing reports whether the policy can quarantine anything.
func (p Policy) Enforcing() bool { return p.Budget > 0 }

func (p *Policy) normalize() {
	if p.ProbationBudget <= 0 {
		p.ProbationBudget = 1
	}
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Millisecond
	}
	if p.BackoffFactor < 2 {
		p.BackoffFactor = 2
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * p.Backoff
	}
	if p.Probation <= 0 {
		p.Probation = p.Backoff
	}
	if p.History <= 0 {
		p.History = 256
	}
}

// Action is the ledger's verdict on one observed fault. The caller (the
// dispatcher) is responsible for carrying it out.
type Action struct {
	// Quarantine directs the caller to compile the faulting binding out
	// of its event's plan.
	Quarantine bool
	// Module directs the caller to quarantine every binding of the
	// faulting module (the module budget was exhausted).
	Module bool
	// Backoff is how long the quarantine should last before probation.
	Backoff time.Duration
	// Level is the quarantine generation (0 for the first quarantine,
	// incremented on each relapse); backoff grows exponentially with it.
	Level int
}

// entry is the per-key lifecycle record.
type entry struct {
	state  State
	faults int // budgeted faults since the last state transition
	level  int // quarantine generation
}

// Ledger captures fault records and applies Policy. All methods are safe
// for concurrent use. Keys are opaque; the dispatcher keys bindings by
// *Binding and modules by *rtti.Module.
type Ledger struct {
	policy Policy

	mu      sync.Mutex
	seq     uint64
	ring    []Record // capacity policy.History, oldest overwritten
	next    int      // ring write cursor
	total   int      // records ever captured
	entries map[any]*entry
	modules map[any]int // moduleKey -> budgeted fault count
}

// NewLedger creates a ledger applying policy (normalized: zero fields get
// their documented defaults).
func NewLedger(policy Policy) *Ledger {
	policy.normalize()
	return &Ledger{
		policy:  policy,
		ring:    make([]Record, 0, policy.History),
		entries: make(map[any]*entry),
		modules: make(map[any]int),
	}
}

// Policy returns the ledger's normalized policy.
func (l *Ledger) Policy() Policy { return l.policy }

// record appends r to the ring. Caller holds l.mu; returns the stamped
// record for OnFault delivery outside the lock.
func (l *Ledger) record(r Record) Record {
	l.seq++
	r.Seq = l.seq
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, r)
	} else {
		l.ring[l.next] = r
	}
	l.next = (l.next + 1) % cap(l.ring)
	return r
}

// Note captures an observational record that never counts against any
// budget (e.g. KindCompare from the purity monitor).
func (l *Ledger) Note(r Record) {
	l.mu.Lock()
	r = l.record(r)
	l.mu.Unlock()
	if l.policy.OnFault != nil {
		l.policy.OnFault(r)
	}
}

// Observe captures a budgeted fault attributed to key (and, when moduleKey
// is non-nil, to its module) and returns the policy's verdict.
func (l *Ledger) Observe(key, moduleKey any, r Record) Action {
	l.mu.Lock()
	r = l.record(r)

	var act Action
	if l.policy.Budget > 0 && key != nil {
		e := l.entries[key]
		if e == nil {
			e = &entry{}
			l.entries[key] = e
		}
		switch e.state {
		case Quarantined:
			// A straggling invocation (e.g. an abandoned EPHEMERAL
			// handler) faulted after quarantine; record only.
		case Probation:
			e.faults++
			if e.faults >= l.policy.ProbationBudget {
				e.state = Quarantined
				e.faults = 0
				e.level++
				act = Action{Quarantine: true, Backoff: l.backoffFor(e.level), Level: e.level}
			}
		default: // Healthy
			e.faults++
			if e.faults >= l.policy.Budget {
				e.state = Quarantined
				e.faults = 0
				act = Action{Quarantine: true, Backoff: l.backoffFor(e.level), Level: e.level}
			}
		}
		if moduleKey != nil && l.policy.ModuleBudget > 0 {
			l.modules[moduleKey]++
			if l.modules[moduleKey] >= l.policy.ModuleBudget {
				l.modules[moduleKey] = 0
				me := l.entries[moduleKey]
				if me == nil {
					me = &entry{}
					l.entries[moduleKey] = me
				}
				if me.state != Quarantined {
					me.state = Quarantined
					act.Module = true
					if !act.Quarantine {
						act = Action{Module: true, Backoff: l.backoffFor(me.level), Level: me.level}
					}
					me.level++
				}
			}
		}
	}
	l.mu.Unlock()
	if l.policy.OnFault != nil {
		l.policy.OnFault(r)
	}
	return act
}

// backoffFor computes the exponential backoff for a quarantine generation.
// Caller holds l.mu.
func (l *Ledger) backoffFor(level int) time.Duration {
	b := l.policy.Backoff
	for i := 0; i < level; i++ {
		b *= time.Duration(l.policy.BackoffFactor)
		if b >= l.policy.MaxBackoff {
			return l.policy.MaxBackoff
		}
	}
	return b
}

// Readmit moves a quarantined key to probation (backoff expired). It
// reports false if the key is not currently quarantined — e.g. it was
// forgotten by an uninstall racing the readmission timer.
func (l *Ledger) Readmit(key any) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[key]
	if e == nil || e.state != Quarantined {
		return false
	}
	e.state = Probation
	e.faults = 0
	return true
}

// Restore moves a probation key back to full health (clean probation):
// the fault count and quarantine generation reset, so a future fault
// sequence starts from the original budget and backoff. It reports false
// if the key relapsed out of probation (or was forgotten) in the meantime.
func (l *Ledger) Restore(key any) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[key]
	if e == nil || e.state != Probation {
		return false
	}
	e.state = Healthy
	e.faults = 0
	e.level = 0
	return true
}

// Forget drops all lifecycle state for key (uninstall).
func (l *Ledger) Forget(key any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.entries, key)
	delete(l.modules, key)
}

// Transfer moves oldKey's lifecycle entry from src into dst under newKey,
// reporting whether an entry existed. A shard move re-keys a binding's
// fault history onto the destination dispatcher's ledger so resharding
// cannot refresh an exhausted budget; the budgeted state (state, fault
// count, quarantine generation) travels, while a pending probation timer
// on the source finds its entry gone and does nothing — the destination
// re-arms backoff on the next fault. Locks are taken one ledger at a time,
// never nested, so Transfer imposes no lock order between ledgers.
func Transfer(src, dst *Ledger, oldKey, newKey any) bool {
	if src == nil || dst == nil {
		return false
	}
	src.mu.Lock()
	e, ok := src.entries[oldKey]
	if ok {
		delete(src.entries, oldKey)
	}
	src.mu.Unlock()
	if !ok {
		return false
	}
	dst.mu.Lock()
	dst.entries[newKey] = e
	dst.mu.Unlock()
	return true
}

// State reports key's lifecycle state.
func (l *Ledger) State(key any) State {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e := l.entries[key]; e != nil {
		return e.state
	}
	return Healthy
}

// Level reports key's quarantine generation.
func (l *Ledger) Level(key any) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e := l.entries[key]; e != nil {
		return e.level
	}
	return 0
}

// Total reports the number of records ever captured (including records the
// ring has since overwritten).
func (l *Ledger) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Records returns the retained fault records, oldest first.
func (l *Ledger) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		return append(out, l.ring...)
	}
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}
