package fault

import (
	"sync"
	"testing"
	"time"
)

func TestLedgerRecordOnlyByDefault(t *testing.T) {
	l := NewLedger(Policy{}) // zero value: record-only
	key := new(int)
	for i := 0; i < 10; i++ {
		act := l.Observe(key, nil, Record{Kind: KindPanic, Handler: "H"})
		if act.Quarantine || act.Module {
			t.Fatalf("record-only ledger produced an action: %+v", act)
		}
	}
	if l.State(key) != Healthy {
		t.Fatalf("state = %v, want Healthy", l.State(key))
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
}

func TestLedgerQuarantineProbationRelapse(t *testing.T) {
	p := Policy{Budget: 3, ProbationBudget: 1, Backoff: 10 * time.Millisecond}
	l := NewLedger(p)
	key := new(int)

	r := Record{Kind: KindPanic, Handler: "H"}
	if act := l.Observe(key, nil, r); act.Quarantine {
		t.Fatal("quarantined on first fault with budget 3")
	}
	if act := l.Observe(key, nil, r); act.Quarantine {
		t.Fatal("quarantined on second fault with budget 3")
	}
	act := l.Observe(key, nil, r)
	if !act.Quarantine || act.Level != 0 || act.Backoff != 10*time.Millisecond {
		t.Fatalf("third fault: act = %+v, want level-0 quarantine with 10ms backoff", act)
	}
	if l.State(key) != Quarantined {
		t.Fatalf("state = %v, want Quarantined", l.State(key))
	}

	// Faults while quarantined (stragglers) never re-trigger.
	if act := l.Observe(key, nil, r); act.Quarantine {
		t.Fatal("straggler fault re-quarantined")
	}

	if !l.Readmit(key) {
		t.Fatal("Readmit failed on quarantined key")
	}
	if l.State(key) != Probation {
		t.Fatalf("state = %v, want Probation", l.State(key))
	}

	// Relapse: one fault on probation re-quarantines with doubled backoff.
	act = l.Observe(key, nil, r)
	if !act.Quarantine || act.Level != 1 || act.Backoff != 20*time.Millisecond {
		t.Fatalf("relapse: act = %+v, want level-1 quarantine with 20ms backoff", act)
	}

	// Clean probation restores full health and resets the generation.
	l.Readmit(key)
	if !l.Restore(key) {
		t.Fatal("Restore failed on probation key")
	}
	if l.State(key) != Healthy || l.Level(key) != 0 {
		t.Fatalf("state = %v level = %d, want Healthy/0", l.State(key), l.Level(key))
	}
}

func TestLedgerBackoffCapped(t *testing.T) {
	p := Policy{Budget: 1, Backoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	l := NewLedger(p)
	key := new(int)
	r := Record{Kind: KindPanic}

	act := l.Observe(key, nil, r)
	if act.Backoff != 10*time.Millisecond {
		t.Fatalf("level 0 backoff = %v", act.Backoff)
	}
	l.Readmit(key)
	act = l.Observe(key, nil, r)
	if act.Backoff != 20*time.Millisecond {
		t.Fatalf("level 1 backoff = %v", act.Backoff)
	}
	l.Readmit(key)
	act = l.Observe(key, nil, r)
	if act.Backoff != 35*time.Millisecond {
		t.Fatalf("level 2 backoff = %v, want capped 35ms", act.Backoff)
	}
}

func TestLedgerModuleBudget(t *testing.T) {
	p := Policy{Budget: 100, ModuleBudget: 3}
	l := NewLedger(p)
	mod := new(int)
	k1, k2 := new(int), new(int)
	r := Record{Kind: KindPanic}

	l.Observe(k1, mod, r)
	l.Observe(k2, mod, r)
	act := l.Observe(k1, mod, r)
	if !act.Module {
		t.Fatalf("third module fault: act = %+v, want Module", act)
	}
	if l.State(mod) != Quarantined {
		t.Fatalf("module state = %v, want Quarantined", l.State(mod))
	}
	// Neither binding was individually quarantined (budget 100).
	if l.State(k1) != Healthy || l.State(k2) != Healthy {
		t.Fatal("individual bindings quarantined by module budget")
	}
}

func TestLedgerForget(t *testing.T) {
	l := NewLedger(Policy{Budget: 1})
	key := new(int)
	l.Observe(key, nil, Record{Kind: KindPanic})
	if l.State(key) != Quarantined {
		t.Fatal("not quarantined")
	}
	l.Forget(key)
	if l.State(key) != Healthy {
		t.Fatal("Forget did not clear state")
	}
	if l.Readmit(key) {
		t.Fatal("Readmit succeeded on forgotten key")
	}
}

func TestLedgerRingRetention(t *testing.T) {
	l := NewLedger(Policy{History: 4})
	for i := 0; i < 7; i++ {
		l.Note(Record{Kind: KindCompare, Handler: "H"})
	}
	recs := l.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if want := uint64(4 + i); r.Seq != want {
			t.Fatalf("record %d seq = %d, want %d (oldest-first)", i, r.Seq, want)
		}
	}
	if l.Total() != 7 {
		t.Fatalf("total = %d, want 7", l.Total())
	}
}

func TestLedgerOnFault(t *testing.T) {
	var mu sync.Mutex
	var seen []Record
	l := NewLedger(Policy{OnFault: func(r Record) {
		mu.Lock()
		seen = append(seen, r)
		mu.Unlock()
	}})
	l.Observe(new(int), nil, Record{Kind: KindPanic})
	l.Note(Record{Kind: KindCompare})
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0].Kind != KindPanic || seen[1].Kind != KindCompare {
		t.Fatalf("OnFault saw %v", seen)
	}
}

func TestInjectorDeterministicPanics(t *testing.T) {
	in := NewInjector().PanicEvery("H", 3, 0)
	calls, panics := 0, 0
	h := in.Handler("H", func(any, []any) any { calls++; return nil })
	for i := 1; i <= 9; i++ {
		func() {
			defer func() {
				if v := recover(); v != nil {
					ip, ok := v.(InjectedPanic)
					if !ok || ip.Target != "H" {
						t.Fatalf("unexpected panic value %v", v)
					}
					panics++
				}
			}()
			h(nil, nil)
		}()
	}
	if panics != 3 || calls != 6 {
		t.Fatalf("panics = %d calls = %d, want 3/6", panics, calls)
	}
	if in.Count("H") != 9 {
		t.Fatalf("count = %d, want 9", in.Count("H"))
	}
}

func TestInjectorOffsetAndBadResult(t *testing.T) {
	in := NewInjector().
		PanicEvery("A", 4, 1).
		BadResultEvery("B", 2, 0, "wrong")

	a := in.Handler("A", func(any, []any) any { return "ok" })
	gotPanic := func() (p bool) {
		defer func() { p = recover() != nil }()
		a(nil, nil)
		return false
	}
	// Offset 1: invocations 1, 5, 9 ... panic.
	want := []bool{true, false, false, false, true}
	for i, w := range want {
		if gotPanic() != w {
			t.Fatalf("invocation %d: panic = %v, want %v", i+1, !w, w)
		}
	}

	b := in.Handler("B", func(any, []any) any { return "real" })
	if r := b(nil, nil); r != "real" {
		t.Fatalf("invocation 1: %v", r)
	}
	if r := b(nil, nil); r != "wrong" {
		t.Fatalf("invocation 2: %v, want injected bad result", r)
	}
}

func TestInjectorGuardWrap(t *testing.T) {
	in := NewInjector().BadResultEvery("G", 2, 0, true)
	g := in.Guard("G", func(any, []any) bool { return false })
	if g(nil, nil) {
		t.Fatal("invocation 1 should pass through (false)")
	}
	if !g(nil, nil) {
		t.Fatal("invocation 2 should be forced true")
	}
}

func TestInjectorConcurrentTicks(t *testing.T) {
	in := NewInjector().PanicEvery("H", 1000000, 0) // effectively never
	h := in.Handler("H", func(any, []any) any { return nil })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h(nil, nil)
			}
		}()
	}
	wg.Wait()
	if in.Count("H") != 8000 {
		t.Fatalf("count = %d, want 8000", in.Count("H"))
	}
}
