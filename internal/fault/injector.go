package fault

import (
	"fmt"
	"sync"
	"time"
)

// InjectedPanic is the panic value the injection harness throws, carrying
// enough identity for tests to assert the fault records they expect.
type InjectedPanic struct {
	// Target is the injection target name.
	Target string
	// N is the 1-based invocation count at which the panic fired.
	N uint64
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic into %s (invocation %d)", p.Target, p.N)
}

// rule is one deterministic injection: it applies on invocations where
// n % Every == Offset % Every.
type rule struct {
	kind   Kind
	every  uint64
	offset uint64
	delay  time.Duration
	value  any
}

func (r *rule) applies(n uint64) bool {
	return r.every > 0 && n%r.every == r.offset%r.every
}

// Injector deterministically injects faults — panics, delays, wrong
// results — into guards and handlers wrapped through it. Injection is
// keyed by target name and driven by a per-target invocation counter, so
// a test (or the spinbench faults scenario) reproduces the same fault
// sequence on every run regardless of scheduling.
type Injector struct {
	mu     sync.Mutex
	rules  map[string][]*rule
	counts map[string]*counter
}

type counter struct {
	mu sync.Mutex
	n  uint64
}

// NewInjector creates an empty injector; without rules, wrapped functions
// run undisturbed.
func NewInjector() *Injector {
	return &Injector{rules: make(map[string][]*rule), counts: make(map[string]*counter)}
}

func (in *Injector) addRule(target string, r *rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[target] = append(in.rules[target], r)
}

// PanicEvery makes every every-th invocation of target panic with an
// InjectedPanic value, starting at invocation offset (1-based; offset 0
// means the every-th, 2*every-th, ... invocations).
func (in *Injector) PanicEvery(target string, every, offset uint64) *Injector {
	in.addRule(target, &rule{kind: KindPanic, every: every, offset: offset})
	return in
}

// DelayEvery makes every every-th invocation of target sleep for d before
// running, to trip wall-clock watchdog deadlines.
func (in *Injector) DelayEvery(target string, every, offset uint64, d time.Duration) *Injector {
	in.addRule(target, &rule{kind: KindDeadline, every: every, offset: offset, delay: d})
	return in
}

// BadResultEvery makes every every-th invocation of target skip the real
// function and return v instead (a wrong-type or wrong-arity result).
func (in *Injector) BadResultEvery(target string, every, offset uint64, v any) *Injector {
	in.addRule(target, &rule{kind: KindBadResult, every: every, offset: offset, value: v})
	return in
}

// Count reports how many invocations target has seen.
func (in *Injector) Count(target string) uint64 {
	in.mu.Lock()
	c := in.counts[target]
	in.mu.Unlock()
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Reset zeroes all invocation counters (the rules stay).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range in.counts {
		c.mu.Lock()
		c.n = 0
		c.mu.Unlock()
	}
}

// tick advances target's counter and returns the matched rule (nil for a
// clean invocation) plus the invocation number.
func (in *Injector) tick(target string) (*rule, uint64) {
	in.mu.Lock()
	c := in.counts[target]
	if c == nil {
		c = &counter{}
		in.counts[target] = c
	}
	rules := in.rules[target]
	in.mu.Unlock()

	c.mu.Lock()
	c.n++
	n := c.n
	c.mu.Unlock()

	for _, r := range rules {
		if r.applies(n) {
			return r, n
		}
	}
	return nil, n
}

// apply runs the matched rule's pre-invocation effect and reports whether
// the real function should be skipped (with the substitute result).
func apply(target string, r *rule, n uint64) (skip bool, substitute any) {
	switch r.kind {
	case KindPanic:
		panic(InjectedPanic{Target: target, N: n})
	case KindDeadline:
		time.Sleep(r.delay)
	case KindBadResult:
		return true, r.value
	}
	return false, nil
}

// Handler wraps a handler implementation (the dispatcher's HandlerFn
// calling convention) with target's injection rules. The returned function
// is assignable to codegen.HandlerFn.
func (in *Injector) Handler(target string, fn func(closure any, args []any) any) func(closure any, args []any) any {
	return func(closure any, args []any) any {
		if r, n := in.tick(target); r != nil {
			if skip, sub := apply(target, r, n); skip {
				return sub
			}
		}
		return fn(closure, args)
	}
}

// Guard wraps a guard predicate (the dispatcher's GuardFn calling
// convention) with target's injection rules. A BadResult rule forces the
// guard's verdict to the rule value's truthiness.
func (in *Injector) Guard(target string, fn func(closure any, args []any) bool) func(closure any, args []any) bool {
	return func(closure any, args []any) bool {
		if r, n := in.tick(target); r != nil {
			if skip, sub := apply(target, r, n); skip {
				b, _ := sub.(bool)
				return b
			}
		}
		return fn(closure, args)
	}
}
