// Package spin is a Go reproduction of the event-based dynamic binding
// mechanism of the SPIN extensible operating system, as described in
// "Dynamic Binding for an Extensible System" (Pardyak & Bershad, OSDI
// 1996).
//
// Events are defined with the granularity and syntax of procedures but
// provide extended procedure-call semantics: conditional execution through
// guards, multicast through multiple handlers, asynchrony, filters, result
// merging, deterministic handler ordering, and authority-based access
// control. The dispatcher bypasses itself entirely for the common case of
// a single unguarded handler and compiles richer events into specialized
// dispatch plans (the runtime-code-generation analog; see
// internal/codegen).
//
// The package exposes three layers:
//
//   - the untyped core (Dispatcher, Event, Handler, Guard), a direct
//     rendering of the paper's Dispatcher interface;
//   - typed generic wrappers (Event0..Event3, FuncEvent0..FuncEvent2)
//     restoring the "every procedure is an event" feel with compile-time
//     signature checking, the role Modula-3's type system played;
//   - the whole-system surface (Boot, Machine) that assembles the kernel
//     substrates — dispatcher, safe dynamic linker, strand scheduler, trap
//     module, and virtual memory — the way the SPIN kernel did.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package spin

import (
	"spin/internal/admit"
	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/kernel"
	"spin/internal/linker"
	"spin/internal/rtti"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// Core dispatcher types (paper §2).
type (
	// Dispatcher oversees event-based communication.
	Dispatcher = dispatch.Dispatcher
	// Event is a dynamically bindable procedure name.
	Event = dispatch.Event
	// Binding is one installed handler on one event.
	Binding = dispatch.Binding
	// Handler pairs a procedure descriptor with its implementation.
	Handler = dispatch.Handler
	// Guard is a side-effect-free predicate filtering handler invocation.
	Guard = dispatch.Guard
	// Order is a handler ordering constraint.
	Order = dispatch.Order
	// AuthRequest is what an event's authorizer evaluates.
	AuthRequest = dispatch.AuthRequest
	// AuthorizerFn approves or denies event manipulation.
	AuthorizerFn = dispatch.AuthorizerFn
	// HandlerFn is the untyped handler calling convention.
	HandlerFn = dispatch.HandlerFn
	// GuardFn is the untyped guard calling convention.
	GuardFn = dispatch.GuardFn
	// CtxHandlerFn is the cancellation-aware handler calling convention;
	// the context is cancelled when a deadline watchdog abandons the
	// invocation.
	CtxHandlerFn = dispatch.CtxHandlerFn
	// ResultFn folds multiple handler results.
	ResultFn = dispatch.ResultFn
	// Stats is an event's dispatch statistics snapshot.
	Stats = dispatch.Stats
	// ArgFrame is one raise's argument vector within a batch.
	ArgFrame = dispatch.ArgFrame
	// BatchOutcome reports how one RaiseBatch's frames were disposed.
	BatchOutcome = dispatch.BatchOutcome
)

// Fault isolation (see internal/fault and DESIGN.md decision 12): handler
// panics, deadline overruns, and virtual-time budget overruns are recorded
// per binding; under an enforcing FaultPolicy, bindings that exhaust their
// budget are quarantined — compiled out of their event's dispatch plan —
// then re-admitted on probation after exponential backoff.
type (
	// FaultPolicy sets fault budgets, deadlines, and backoff.
	FaultPolicy = fault.Policy
	// FaultRecord is one recorded fault.
	FaultRecord = fault.Record
	// FaultLedger accumulates fault records and budget state.
	FaultLedger = fault.Ledger
	// FaultState is a binding's lifecycle state (Healthy, Quarantined,
	// Probation).
	FaultState = fault.State
	// FaultInjector deterministically injects panics, delays, and bad
	// results into handlers and guards, for fault-drill testing.
	FaultInjector = fault.Injector
)

var (
	// WithFaultPolicy enables fault enforcement on a dispatcher.
	WithFaultPolicy = dispatch.WithFaultPolicy
	// DefaultFaultPolicy is a sensible enforcing policy (budget 3,
	// exponential backoff from 100ms).
	DefaultFaultPolicy = fault.DefaultPolicy
	// NewFaultInjector creates an empty fault-injection harness.
	NewFaultInjector = fault.NewInjector
	// WithDeadline attaches a watchdog deadline to an async handler.
	WithDeadline = dispatch.WithDeadline
)

// Overload control (see internal/admit and DESIGN.md decision 13):
// asynchronous raises and handler invocations pass through bounded
// admission queues drained by a shared size-capped worker pool; a
// pluggable policy decides what happens at capacity, and a degradation
// controller disables optional bindings by priority class as load crosses
// configured thresholds.
type (
	// AdmissionConfig configures a dispatcher's overload control.
	AdmissionConfig = dispatch.AdmissionConfig
	// AdmitPolicy is one event's admission policy (mode, queue depth,
	// block timeout, retry schedule).
	AdmitPolicy = admit.Policy
	// AdmitMode selects the full-queue behaviour (Block, Shed,
	// ShedOldest, Coalesce).
	AdmitMode = admit.Mode
	// AdmitLevel is one rung of the degradation ladder.
	AdmitLevel = admit.Level
	// AdmitQueueStats is one admission queue's accounting snapshot.
	AdmitQueueStats = admit.QueueStats
	// AdmitPoolStats is the shared worker pool's snapshot.
	AdmitPoolStats = admit.PoolStats
	// OverloadError is the typed error a shed asynchronous raise returns;
	// test with errors.Is(err, ErrOverload).
	OverloadError = admit.OverloadError
)

// Admission policy modes.
const (
	AdmitBlock      = admit.Block
	AdmitShed       = admit.Shed
	AdmitShedOldest = admit.ShedOldest
	AdmitCoalesce   = admit.Coalesce
)

var (
	// ErrOverload is the sentinel every shed submission wraps.
	ErrOverload = admit.ErrOverload
	// WithAdmission enables overload control on a dispatcher.
	WithAdmission = dispatch.WithAdmission
	// WithPriority assigns a handler installation a degradation priority
	// class (0 = essential, never disabled).
	WithPriority = dispatch.WithPriority
)

// Runtime type information (paper §2.4-2.5).
type (
	// Module is a compilation-unit descriptor; presenting it
	// demonstrates authority (THIS_MODULE).
	Module = rtti.Module
	// Proc is a procedure descriptor: module, signature, FUNCTIONAL and
	// EPHEMERAL attributes.
	Proc = rtti.Proc
	// Signature is a procedure signature.
	Signature = rtti.Signature
	// Type is an rtti value type.
	Type = rtti.Type
)

// Dispatch tracing (see internal/trace): spans reconstruct one raise's
// causal structure — guard evaluations, handler invocations, result
// merges — with tracing compiled into the dispatch plan only when enabled,
// so the zero-allocation fast path is untouched when off.
type (
	// Tracer owns a span ring and records sampled raises.
	Tracer = trace.Tracer
	// TraceConfig sizes the span ring and sets the 1-in-N sampling rate.
	TraceConfig = trace.Config
	// Span is one decoded trace record.
	Span = trace.Span
)

// NewTracer creates a tracer; pass it to WithTracer (dispatcher-wide),
// MachineConfig.Trace (machine-wide), or Event.Trace (per event).
var NewTracer = trace.New

// WithTracer enables dispatch tracing for every event defined on the
// dispatcher.
var WithTracer = dispatch.WithTracer

// Pred is an inlinable guard predicate; guards built from predicates are
// FUNCTIONAL by construction and eligible for inlining into the generated
// dispatch routine.
type Pred = codegen.Pred

// Body is an inlinable handler body.
type Body = codegen.Body

// Whole-system types.
type (
	// Machine is a booted kernel instance.
	Machine = kernel.Machine
	// MachineConfig selects how a machine boots.
	MachineConfig = kernel.Config
	// ExtensionImage is a dynamically loadable extension.
	ExtensionImage = linker.Image
	// Interface is a named set of linkable symbols.
	Interface = linker.Interface
	// LinkContext gives an extension initializer its resolved imports.
	LinkContext = linker.Context
)

// Options and constructors, re-exported from the core.
var (
	// NewDispatcher creates a stand-alone dispatcher (no kernel).
	NewDispatcher = dispatch.New
	// WithIntrinsic installs an event's intrinsic handler at definition.
	WithIntrinsic = dispatch.WithIntrinsic
	// WithOwner assigns authority to an event without an intrinsic.
	WithOwner = dispatch.WithOwner
	// AsAsync makes every raise of the event asynchronous.
	AsAsync = dispatch.AsAsync
	// WithGuard attaches a guard to an installation.
	WithGuard = dispatch.WithGuard
	// WithClosure attaches an installation closure.
	WithClosure = dispatch.WithClosure
	// WithCredential attaches an opaque authorization credential.
	WithCredential = dispatch.WithCredential
	// First/Last/Before/After are the ordering constraints of §2.3.
	First  = dispatch.First
	Last   = dispatch.Last
	Before = dispatch.Before
	After  = dispatch.After
	// Async makes a single handler asynchronous.
	Async = dispatch.Async
	// Ephemeral installs a terminable handler.
	Ephemeral = dispatch.Ephemeral
	// AsFilter installs an argument-rewriting filter.
	AsFilter = dispatch.AsFilter
	// NewModule declares a module descriptor.
	NewModule = rtti.NewModule
	// Boot assembles a machine: dispatcher, linker, scheduler, trap
	// module, and VM.
	Boot = kernel.Boot
	// NewInterface builds a linkable interface.
	NewInterface = linker.NewInterface
)

// Predicate constructors for inlinable guards.
var (
	// PredTrue always passes (and is elided by the peephole optimizer).
	PredTrue = codegen.True
	// PredFalse never passes (and removes its binding entirely).
	PredFalse = codegen.False
	// PredGlobalEq compares a global cell to a constant.
	PredGlobalEq = codegen.GlobalEq
	// PredGlobalNe is its negation.
	PredGlobalNe = codegen.GlobalNe
	// PredArgEq compares a word argument to a constant.
	PredArgEq = codegen.ArgEq
	// PredArgNe is its negation.
	PredArgNe = codegen.ArgNe
	// PredArgLt passes when the argument is below the constant.
	PredArgLt = codegen.ArgLt
	// PredAnd, PredOr, PredNot combine predicates.
	PredAnd = codegen.And
	PredOr  = codegen.Or
	PredNot = codegen.Not
)

// Inline handler body constructors.
var (
	// BodyNop does nothing.
	BodyNop = codegen.Nop
	// BodyReturnConst produces a constant.
	BodyReturnConst = codegen.ReturnConst
	// BodyAddWord increments a counter cell.
	BodyAddWord = codegen.AddWord
	// BodyReturnArg echoes a raise argument.
	BodyReturnArg = codegen.ReturnArg
)

// Errors, re-exported so callers can errors.Is against them.
var (
	ErrNoHandler         = dispatch.ErrNoHandler
	ErrAmbiguousResult   = dispatch.ErrAmbiguousResult
	ErrNotAuthority      = dispatch.ErrNotAuthority
	ErrDenied            = dispatch.ErrDenied
	ErrAsyncByRef        = dispatch.ErrAsyncByRef
	ErrLinkDenied        = linker.ErrLinkDenied
	ErrModuleQuarantined = dispatch.ErrModuleQuarantined
	ErrDomainQuarantined = linker.ErrQuarantined
)

// rtti type singletons for building explicit signatures.
var (
	// Word is a machine word.
	Word = rtti.Word
	// Bool is the boolean type.
	Bool = rtti.Bool
	// Text is an immutable string.
	Text = rtti.Text
	// RefAny is the root reference type (and Go's any).
	RefAny rtti.Type = rtti.RefAny
)

// Sig builds a by-value signature; the first parameter is the result type
// (nil for none).
func Sig(result Type, args ...Type) Signature { return rtti.Sig(result, args...) }

// Micros converts microseconds (the paper's unit) to a virtual duration.
func Micros(us float64) vtime.Duration { return vtime.Micros(us) }
