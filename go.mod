module spin

go 1.22
