package spin

import (
	"context"

	"spin/internal/dispatch"
	"spin/internal/rtti"
)

// This file provides the typed generic layer over the untyped dispatcher.
// In SPIN, Modula-3's type system made every event a typed procedure name:
// raising and handling were statically checked. Go generics restore that
// property: a typed event's Raise takes exactly the declared parameter
// types, and handlers installed through the typed wrappers cannot
// mismatch the signature.
//
// The rtti signature is derived from the type parameters' zero values:
// integer kinds map to WORD, string to TEXT, bool to BOOLEAN, and types
// implementing rtti.Described report themselves; everything else is
// REFANY. An explicit signature can always be used via the untyped API.

// typeOfParam maps a type parameter to its rtti type.
func typeOfParam[T any]() rtti.Type {
	var zero T
	return rtti.TypeOf(zero)
}

// handlerProc builds the descriptor for a typed handler.
func handlerProc(name string, m *Module, sig Signature) *Proc {
	return &rtti.Proc{Name: name, Module: m, Sig: sig}
}

// guardProc builds the descriptor for a typed guard (FUNCTIONAL, boolean
// result).
func guardProc(name string, m *Module, args []Type) *Proc {
	return &rtti.Proc{Name: name, Module: m, Functional: true,
		Sig: rtti.Signature{Args: args, Result: rtti.Bool}}
}

// asT safely converts a raise argument to the declared parameter type.
func asT[T any](v any) T {
	t, _ := v.(T)
	return t
}

// ---- Event0: procedures with no parameters and no result ----

// Event0 is a typed event with no parameters.
type Event0 struct{ ev *dispatch.Event }

// NewEvent0 defines a typed no-parameter event.
func NewEvent0(d *Dispatcher, name string, opts ...dispatch.EventOption) (*Event0, error) {
	ev, err := d.DefineEvent(name, rtti.Sig(nil), opts...)
	if err != nil {
		return nil, err
	}
	return &Event0{ev}, nil
}

// Underlying exposes the untyped event for advanced manipulation
// (authorizers, result handlers, ordering queries).
func (e *Event0) Underlying() *Event { return e.ev }

// Trace enables (or, with nil, disables) dispatch tracing for this event.
func (e *Event0) Trace(t *Tracer) { e.ev.Trace(t) }

// SetAdmission gives the event a bounded admission queue under pol, or
// removes it with nil (see Event.SetAdmission).
func (e *Event0) SetAdmission(pol *AdmitPolicy) { e.ev.SetAdmission(pol) }

// Raise announces the event through the zero-allocation arity-specialized
// path.
func (e *Event0) Raise() error {
	_, err := e.ev.Raise0()
	return err
}

// RaiseBatch announces the event n times through the batched ingress
// tier (see Event.RaiseBatch): the dispatch plan and per-raise fixed
// costs are paid once per batch.
func (e *Event0) RaiseBatch(n int) BatchOutcome { return e.ev.RaiseBatch0(n) }

// Install registers a typed handler.
func (e *Event0) Install(name string, m *Module, fn func(), opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		Fn: func(clo any, args []any) any { fn(); return nil }}
	return e.ev.Install(h, opts...)
}

// ---- Event1 ----

// InstallCtx registers a typed cancellation-aware handler: the context is
// cancelled when a deadline watchdog (Ephemeral or Async+WithDeadline
// under a fault policy) abandons the invocation.
func (e *Event0) InstallCtx(name string, m *Module, fn func(context.Context), opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		CtxFn: func(ctx context.Context, clo any, args []any) any { fn(ctx); return nil }}
	return e.ev.Install(h, opts...)
}

// Event1 is a typed event with one parameter.
type Event1[A1 any] struct{ ev *dispatch.Event }

// NewEvent1 defines a typed one-parameter event.
func NewEvent1[A1 any](d *Dispatcher, name string, opts ...dispatch.EventOption) (*Event1[A1], error) {
	ev, err := d.DefineEvent(name, rtti.Sig(nil, typeOfParam[A1]()), opts...)
	if err != nil {
		return nil, err
	}
	return &Event1[A1]{ev}, nil
}

// Underlying exposes the untyped event.
func (e *Event1[A1]) Underlying() *Event { return e.ev }

// Trace enables (or, with nil, disables) dispatch tracing for this event.
func (e *Event1[A1]) Trace(t *Tracer) { e.ev.Trace(t) }

// SetAdmission gives the event a bounded admission queue under pol, or
// removes it with nil (see Event.SetAdmission).
func (e *Event1[A1]) SetAdmission(pol *AdmitPolicy) { e.ev.SetAdmission(pol) }

// Raise announces the event through the arity-specialized path: the
// argument travels in a pooled fixed-size frame, not a fresh []any.
func (e *Event1[A1]) Raise(a1 A1) error {
	_, err := e.ev.Raise1(a1)
	return err
}

// RaiseAsync announces the event asynchronously.
func (e *Event1[A1]) RaiseAsync(a1 A1) error {
	return e.ev.RaiseAsync(a1)
}

// RaiseBatch announces the event once per element of vals through the
// batched ingress tier (see Event.RaiseBatch). The typed arguments are
// boxed into one flat row-major slice — the only per-batch allocation.
func (e *Event1[A1]) RaiseBatch(vals []A1) BatchOutcome {
	flat := make([]any, len(vals))
	for i := range vals {
		flat[i] = vals[i]
	}
	return e.ev.RaiseBatch1(flat)
}

// Install registers a typed handler.
func (e *Event1[A1]) Install(name string, m *Module, fn func(A1), opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		Fn: func(clo any, args []any) any { fn(asT[A1](args[0])); return nil }}
	return e.ev.Install(h, opts...)
}

// InstallCtx registers a typed cancellation-aware handler.
func (e *Event1[A1]) InstallCtx(name string, m *Module, fn func(context.Context, A1), opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		CtxFn: func(ctx context.Context, clo any, args []any) any {
			fn(ctx, asT[A1](args[0]))
			return nil
		}}
	return e.ev.Install(h, opts...)
}

// Guard builds a typed FUNCTIONAL guard for this event.
func (e *Event1[A1]) Guard(name string, m *Module, fn func(A1) bool) Guard {
	return Guard{
		Proc: guardProc(name, m, e.ev.Signature().Args),
		Fn:   func(clo any, args []any) bool { return fn(asT[A1](args[0])) },
	}
}

// ---- Event2 ----

// Event2 is a typed event with two parameters — the shape of the paper's
// MachineTrap.Syscall(strand, savedState).
type Event2[A1, A2 any] struct{ ev *dispatch.Event }

// NewEvent2 defines a typed two-parameter event.
func NewEvent2[A1, A2 any](d *Dispatcher, name string, opts ...dispatch.EventOption) (*Event2[A1, A2], error) {
	ev, err := d.DefineEvent(name, rtti.Sig(nil, typeOfParam[A1](), typeOfParam[A2]()), opts...)
	if err != nil {
		return nil, err
	}
	return &Event2[A1, A2]{ev}, nil
}

// Underlying exposes the untyped event.
func (e *Event2[A1, A2]) Underlying() *Event { return e.ev }

// Trace enables (or, with nil, disables) dispatch tracing for this event.
func (e *Event2[A1, A2]) Trace(t *Tracer) { e.ev.Trace(t) }

// SetAdmission gives the event a bounded admission queue under pol, or
// removes it with nil (see Event.SetAdmission).
func (e *Event2[A1, A2]) SetAdmission(pol *AdmitPolicy) { e.ev.SetAdmission(pol) }

// Raise announces the event through the arity-specialized path.
func (e *Event2[A1, A2]) Raise(a1 A1, a2 A2) error {
	_, err := e.ev.Raise2(a1, a2)
	return err
}

// RaiseAsync announces the event asynchronously.
func (e *Event2[A1, A2]) RaiseAsync(a1 A1, a2 A2) error {
	return e.ev.RaiseAsync(a1, a2)
}

// RaiseBatch announces the event once per index of the parallel slices
// (frame i is a1s[i], a2s[i]; the shorter slice bounds the batch) through
// the batched ingress tier (see Event.RaiseBatch).
func (e *Event2[A1, A2]) RaiseBatch(a1s []A1, a2s []A2) BatchOutcome {
	n := len(a1s)
	if len(a2s) < n {
		n = len(a2s)
	}
	flat := make([]any, 2*n)
	for i := 0; i < n; i++ {
		flat[2*i] = a1s[i]
		flat[2*i+1] = a2s[i]
	}
	return e.ev.RaiseBatch2(flat)
}

// Install registers a typed handler.
func (e *Event2[A1, A2]) Install(name string, m *Module, fn func(A1, A2), opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		Fn: func(clo any, args []any) any {
			fn(asT[A1](args[0]), asT[A2](args[1]))
			return nil
		}}
	return e.ev.Install(h, opts...)
}

// InstallCtx registers a typed cancellation-aware handler.
func (e *Event2[A1, A2]) InstallCtx(name string, m *Module, fn func(context.Context, A1, A2), opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		CtxFn: func(ctx context.Context, clo any, args []any) any {
			fn(ctx, asT[A1](args[0]), asT[A2](args[1]))
			return nil
		}}
	return e.ev.Install(h, opts...)
}

// Guard builds a typed FUNCTIONAL guard for this event.
func (e *Event2[A1, A2]) Guard(name string, m *Module, fn func(A1, A2) bool) Guard {
	return Guard{
		Proc: guardProc(name, m, e.ev.Signature().Args),
		Fn: func(clo any, args []any) bool {
			return fn(asT[A1](args[0]), asT[A2](args[1]))
		},
	}
}

// ---- Event3 ----

// Event3 is a typed event with three parameters.
type Event3[A1, A2, A3 any] struct{ ev *dispatch.Event }

// NewEvent3 defines a typed three-parameter event.
func NewEvent3[A1, A2, A3 any](d *Dispatcher, name string, opts ...dispatch.EventOption) (*Event3[A1, A2, A3], error) {
	ev, err := d.DefineEvent(name,
		rtti.Sig(nil, typeOfParam[A1](), typeOfParam[A2](), typeOfParam[A3]()), opts...)
	if err != nil {
		return nil, err
	}
	return &Event3[A1, A2, A3]{ev}, nil
}

// Underlying exposes the untyped event.
func (e *Event3[A1, A2, A3]) Underlying() *Event { return e.ev }

// Trace enables (or, with nil, disables) dispatch tracing for this event.
func (e *Event3[A1, A2, A3]) Trace(t *Tracer) { e.ev.Trace(t) }

// SetAdmission gives the event a bounded admission queue under pol, or
// removes it with nil (see Event.SetAdmission).
func (e *Event3[A1, A2, A3]) SetAdmission(pol *AdmitPolicy) { e.ev.SetAdmission(pol) }

// Raise announces the event through the arity-specialized path.
func (e *Event3[A1, A2, A3]) Raise(a1 A1, a2 A2, a3 A3) error {
	_, err := e.ev.Raise3(a1, a2, a3)
	return err
}

// RaiseBatch announces the event once per index of the parallel slices
// (frame i is a1s[i], a2s[i], a3s[i]; the shortest slice bounds the
// batch) through the batched ingress tier (see Event.RaiseBatch).
func (e *Event3[A1, A2, A3]) RaiseBatch(a1s []A1, a2s []A2, a3s []A3) BatchOutcome {
	n := len(a1s)
	if len(a2s) < n {
		n = len(a2s)
	}
	if len(a3s) < n {
		n = len(a3s)
	}
	flat := make([]any, 3*n)
	for i := 0; i < n; i++ {
		flat[3*i] = a1s[i]
		flat[3*i+1] = a2s[i]
		flat[3*i+2] = a3s[i]
	}
	return e.ev.RaiseBatch3(flat)
}

// Install registers a typed handler.
func (e *Event3[A1, A2, A3]) Install(name string, m *Module, fn func(A1, A2, A3), opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		Fn: func(clo any, args []any) any {
			fn(asT[A1](args[0]), asT[A2](args[1]), asT[A3](args[2]))
			return nil
		}}
	return e.ev.Install(h, opts...)
}

// Guard builds a typed FUNCTIONAL guard for this event.
func (e *Event3[A1, A2, A3]) Guard(name string, m *Module, fn func(A1, A2, A3) bool) Guard {
	return Guard{
		Proc: guardProc(name, m, e.ev.Signature().Args),
		Fn: func(clo any, args []any) bool {
			return fn(asT[A1](args[0]), asT[A2](args[1]), asT[A3](args[2]))
		},
	}
}

// ---- FuncEvent: events that return a value ----

// FuncEvent0 is a typed result-returning event with no parameters.
type FuncEvent0[R any] struct{ ev *dispatch.Event }

// NewFuncEvent0 defines a typed result event.
func NewFuncEvent0[R any](d *Dispatcher, name string, opts ...dispatch.EventOption) (*FuncEvent0[R], error) {
	ev, err := d.DefineEvent(name, rtti.Signature{Result: typeOfParam[R]()}, opts...)
	if err != nil {
		return nil, err
	}
	return &FuncEvent0[R]{ev}, nil
}

// Underlying exposes the untyped event.
func (e *FuncEvent0[R]) Underlying() *Event { return e.ev }

// Trace enables (or, with nil, disables) dispatch tracing for this event.
func (e *FuncEvent0[R]) Trace(t *Tracer) { e.ev.Trace(t) }

// SetAdmission gives the event a bounded admission queue under pol, or
// removes it with nil (see Event.SetAdmission).
func (e *FuncEvent0[R]) SetAdmission(pol *AdmitPolicy) { e.ev.SetAdmission(pol) }

// Raise announces the event and returns the merged result.
func (e *FuncEvent0[R]) Raise() (R, error) {
	res, err := e.ev.Raise0()
	return asT[R](res), err
}

// Install registers a typed handler.
func (e *FuncEvent0[R]) Install(name string, m *Module, fn func() R, opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		Fn: func(clo any, args []any) any { return fn() }}
	return e.ev.Install(h, opts...)
}

// ---- FuncEvent1 ----

// FuncEvent1 is a typed result-returning event with one parameter.
type FuncEvent1[A1, R any] struct{ ev *dispatch.Event }

// NewFuncEvent1 defines a typed result event.
func NewFuncEvent1[A1, R any](d *Dispatcher, name string, opts ...dispatch.EventOption) (*FuncEvent1[A1, R], error) {
	ev, err := d.DefineEvent(name,
		rtti.Signature{Args: []rtti.Type{typeOfParam[A1]()}, Result: typeOfParam[R]()}, opts...)
	if err != nil {
		return nil, err
	}
	return &FuncEvent1[A1, R]{ev}, nil
}

// Underlying exposes the untyped event.
func (e *FuncEvent1[A1, R]) Underlying() *Event { return e.ev }

// Trace enables (or, with nil, disables) dispatch tracing for this event.
func (e *FuncEvent1[A1, R]) Trace(t *Tracer) { e.ev.Trace(t) }

// SetAdmission gives the event a bounded admission queue under pol, or
// removes it with nil (see Event.SetAdmission).
func (e *FuncEvent1[A1, R]) SetAdmission(pol *AdmitPolicy) { e.ev.SetAdmission(pol) }

// Raise announces the event and returns the merged result.
func (e *FuncEvent1[A1, R]) Raise(a1 A1) (R, error) {
	res, err := e.ev.Raise1(a1)
	return asT[R](res), err
}

// Install registers a typed handler.
func (e *FuncEvent1[A1, R]) Install(name string, m *Module, fn func(A1) R, opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		Fn: func(clo any, args []any) any { return fn(asT[A1](args[0])) }}
	return e.ev.Install(h, opts...)
}

// Guard builds a typed FUNCTIONAL guard for this event.
func (e *FuncEvent1[A1, R]) Guard(name string, m *Module, fn func(A1) bool) Guard {
	return Guard{
		Proc: guardProc(name, m, e.ev.Signature().Args),
		Fn:   func(clo any, args []any) bool { return fn(asT[A1](args[0])) },
	}
}

// ---- FuncEvent2 ----

// FuncEvent2 is a typed result-returning event with two parameters — the
// shape of the paper's VM.PageFault(space, address): BOOLEAN.
type FuncEvent2[A1, A2, R any] struct{ ev *dispatch.Event }

// NewFuncEvent2 defines a typed result event.
func NewFuncEvent2[A1, A2, R any](d *Dispatcher, name string, opts ...dispatch.EventOption) (*FuncEvent2[A1, A2, R], error) {
	ev, err := d.DefineEvent(name, rtti.Signature{
		Args:   []rtti.Type{typeOfParam[A1](), typeOfParam[A2]()},
		Result: typeOfParam[R](),
	}, opts...)
	if err != nil {
		return nil, err
	}
	return &FuncEvent2[A1, A2, R]{ev}, nil
}

// Underlying exposes the untyped event.
func (e *FuncEvent2[A1, A2, R]) Underlying() *Event { return e.ev }

// Trace enables (or, with nil, disables) dispatch tracing for this event.
func (e *FuncEvent2[A1, A2, R]) Trace(t *Tracer) { e.ev.Trace(t) }

// SetAdmission gives the event a bounded admission queue under pol, or
// removes it with nil (see Event.SetAdmission).
func (e *FuncEvent2[A1, A2, R]) SetAdmission(pol *AdmitPolicy) { e.ev.SetAdmission(pol) }

// Raise announces the event and returns the merged result.
func (e *FuncEvent2[A1, A2, R]) Raise(a1 A1, a2 A2) (R, error) {
	res, err := e.ev.Raise2(a1, a2)
	return asT[R](res), err
}

// Install registers a typed handler.
func (e *FuncEvent2[A1, A2, R]) Install(name string, m *Module, fn func(A1, A2) R, opts ...dispatch.InstallOption) (*Binding, error) {
	h := Handler{Proc: handlerProc(name, m, e.ev.Signature()),
		Fn: func(clo any, args []any) any {
			return fn(asT[A1](args[0]), asT[A2](args[1]))
		}}
	return e.ev.Install(h, opts...)
}

// Guard builds a typed FUNCTIONAL guard for this event.
func (e *FuncEvent2[A1, A2, R]) Guard(name string, m *Module, fn func(A1, A2) bool) Guard {
	return Guard{
		Proc: guardProc(name, m, e.ev.Signature().Args),
		Fn: func(clo any, args []any) bool {
			return fn(asT[A1](args[0]), asT[A2](args[1]))
		},
	}
}
