// Runaway handlers: the paper's §2.6 "Denial of service" mechanisms,
// live. An extension that never returns would stall every raiser of the
// event it handles; SPIN offers "one solution preventative, but expensive"
// — asynchrony — "and the other corrective, but cheap": termination of
// handlers that declared themselves EPHEMERAL. This example also shows the
// resource-accounting answer to "Too many handlers".
//
//	go run ./examples/runaway-handlers
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"spin"
	"spin/internal/dispatch"
	"spin/internal/rtti"
)

var module = spin.NewModule("Runaway")

func main() {
	d := spin.NewDispatcher()
	sig := spin.Sig(nil, spin.Word)

	// --- Corrective: EPHEMERAL termination ---------------------------
	packet, _ := d.DefineEvent("Net.PacketArrived", sig, dispatch.WithOwner(module))

	// The authority refuses handlers that have not invited termination —
	// §2.6: "An authorizer can determine whether or not a particular
	// handler is in fact EPHEMERAL, and refuse installation if it is not."
	_ = packet.InstallAuthorizer(func(req *dispatch.AuthRequest) bool {
		if req.Op == dispatch.OpInstall && !req.IsEphemeral() {
			fmt.Println("authorizer: refused non-EPHEMERAL handler",
				req.Binding.HandlerName())
			return false
		}
		return true
	}, module)

	plain := spin.Handler{
		Proc: &rtti.Proc{Name: "Ext.Plain", Module: module, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	}
	if _, err := packet.Install(plain); !errors.Is(err, spin.ErrDenied) {
		fmt.Println("unexpected:", err)
	}

	// An EPHEMERAL handler that wedges on its third packet: it blocks on a
	// channel that nobody ever signals. Declaring EPHEMERAL means inviting
	// termination, so the handler is written in the cancellation-aware
	// CtxFn convention — when the watchdog's deadline fires, ctx is
	// cancelled and the blocked delivery unwinds instead of leaking.
	stuck := make(chan struct{})
	defer close(stuck)
	count := 0
	eph := spin.Handler{
		Proc: &rtti.Proc{Name: "Ext.Deliver", Module: module, Sig: sig,
			Ephemeral: true},
		CtxFn: func(ctx context.Context, clo any, args []any) any {
			count++
			if count == 3 {
				select {
				case <-stuck: // would wedge forever...
				case <-ctx.Done(): // ...but the watchdog terminates it
				}
			}
			return nil
		},
	}
	b, err := packet.Install(eph, spin.Ephemeral(5*time.Millisecond))
	if err != nil {
		fmt.Println("install:", err)
		return
	}

	fmt.Println("\n-- delivering packets through an EPHEMERAL handler --")
	for i := 1; i <= 4; i++ {
		start := time.Now()
		_, err := packet.Raise(uint64(i))
		fmt.Printf("packet %d: err=%v, raiser blocked %v\n", i, err,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("terminations: %d (the wedged delivery simply lost its packet)\n",
		b.Terminations())

	// --- Preventative: asynchrony ------------------------------------
	fmt.Println("\n-- asynchronous handler: the raiser never waits --")
	slowDone := make(chan struct{})
	logEv, _ := d.DefineEvent("Audit.Record", sig, dispatch.WithOwner(module))
	_, _ = logEv.Install(spin.Handler{
		Proc: &rtti.Proc{Name: "Audit.SlowWriter", Module: module, Sig: sig},
		Fn: func(any, []any) any {
			time.Sleep(20 * time.Millisecond) // slow stable storage
			close(slowDone)
			return nil
		},
	}, spin.Async())
	start := time.Now()
	_, _ = logEv.Raise(uint64(1))
	fmt.Printf("raise returned after %v; the slow writer runs detached\n",
		time.Since(start).Round(time.Millisecond))
	<-slowDone

	// --- Too many handlers: resource accounting ----------------------
	fmt.Println("\n-- handler quotas --")
	dq := spin.NewDispatcher(dispatch.WithHandlerQuota(3))
	ev, _ := dq.DefineEvent("M.P", sig)
	h := spin.Handler{
		Proc: &rtti.Proc{Name: "Greedy.H", Module: module, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	}
	for i := 1; ; i++ {
		if _, err := ev.Install(h); err != nil {
			fmt.Printf("install %d: %v\n", i, err)
			break
		}
		fmt.Printf("install %d: ok\n", i)
	}
}
