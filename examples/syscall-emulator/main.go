// Syscall emulator: reproduces the paper's running example end to end —
// Figure 2 (the Mach emulator's guarded handler on MachineTrap.Syscall)
// and Figure 3 (the MachineTrap module asserting authority over the event
// and imposing per-address-space guards on every installation).
//
//	go run ./examples/syscall-emulator
package main

import (
	"errors"
	"fmt"
	"log"

	"spin"
	"spin/internal/dispatch"
	"spin/internal/emu/mach"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/trap"
	"spin/internal/vm"
)

func main() {
	// Trace every raise; a per-raise excerpt prints at the end
	// (cmd/spintrace replays this scenario with full export options).
	tracer := spin.NewTracer(spin.TraceConfig{Capacity: 4096})
	m, err := spin.Boot(spin.MachineConfig{Name: "demo", Metered: true, Trace: tracer})
	if err != nil {
		log.Fatal(err)
	}

	// Figure 3: MachineTrap, as the authority over its Syscall event,
	// installs an authorizer. On every handler installation it imposes
	// a guard confining the handler to system calls from the address
	// space current at installation time.
	installingSpace := new(uint64)
	err = m.Trap.InstallAuthorizer(func(req *dispatch.AuthRequest) bool {
		if req.Op != dispatch.OpInstall {
			return true
		}
		valid := *installingSpace
		gproc := &rtti.Proc{
			Name: "MachineTrap.ImposedSyscallGuard", Module: trap.Module,
			Functional: true,
			Sig: rtti.Signature{
				Args:   []rtti.Type{rtti.RefAny, sched.StrandType, trap.SavedStateType},
				Result: rtti.Bool,
			},
		}
		err := req.ImposeGuard(dispatch.Guard{
			Proc:    gproc,
			Closure: valid,
			Fn: func(validSpace any, args []any) bool {
				// RETURN Space(strand) = validSpace
				return args[0].(*sched.Strand).Space() == validSpace.(uint64)
			},
		})
		if err != nil {
			fmt.Println("authorizer: impose failed:", err)
			return false
		}
		fmt.Printf("authorizer: allowed %s, imposed guard for space %d\n",
			req.Binding.HandlerName(), valid)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two address spaces, each with its own Mach emulator instance
	// (Figure 2's module), loaded through the dynamic linker.
	spaceA, spaceB := m.VM.NewSpace(), m.VM.NewSpace()

	emuA := &mach.Emulator{}
	*installingSpace = spaceA.ID()
	if _, err := m.LoadExtension(imageNamed(emuA, "mach-for-A")); err != nil {
		log.Fatal(err)
	}
	emuB := &mach.Emulator{}
	*installingSpace = spaceB.ID()
	if _, err := m.LoadExtension(imageNamed(emuB, "mach-for-B")); err != nil {
		log.Fatal(err)
	}

	// Two strands, one per space, both registered as Mach tasks.
	strandA := m.Sched.Spawn("task-A", spaceA.ID(), func(*sched.Strand) sched.Status { return sched.Done })
	strandB := m.Sched.Spawn("task-B", spaceB.ID(), func(*sched.Strand) sched.Status { return sched.Done })
	emuA.MakeTask(strandA, spaceA)
	emuB.MakeTask(strandB, spaceB)

	// vm_allocate from each task: the imposed guards ensure each
	// emulator instance only sees its own space's system calls.
	fmt.Println("\n-- task A: vm_allocate(3 pages) --")
	ms := &trap.SavedState{V0: mach.Uint64(mach.TrapVMAllocate)}
	ms.A[0] = 3 * vm.PageSize
	if err := m.Trap.RaiseSyscall(strandA, ms); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated at %#x (errno %d); A handled=%d, B handled=%d\n",
		ms.Result, ms.Errno, emuA.Syscalls, emuB.Syscalls)

	fmt.Println("\n-- task B: task_self() --")
	ms = &trap.SavedState{V0: mach.Uint64(mach.TrapTaskSelf)}
	if err := m.Trap.RaiseSyscall(strandB, ms); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task_self = %d; A handled=%d, B handled=%d\n",
		ms.Result, emuA.Syscalls, emuB.Syscalls)

	// A strand outside any Mach task: no handler fires — the unhandled
	// trap surfaces as the paper's runtime exception at the raise point.
	fmt.Println("\n-- stranger: unhandled trap --")
	stranger := m.Sched.Spawn("stranger", 99, func(*sched.Strand) sched.Status { return sched.Done })
	err = m.Trap.RaiseSyscall(stranger, &trap.SavedState{V0: 1})
	fmt.Println("raise error:", err, "| is ErrNoHandler:", errors.Is(err, spin.ErrNoHandler))

	fmt.Printf("\nSyscall event stats: %+v\n", m.Trap.Syscall.Stats())

	// The first traced MachineTrap.Syscall raise, span by span: the
	// imposed guards evaluating (pass for A's emulator, fail for B's)
	// before the confined handler fires.
	spans := tracer.Snapshot()
	var first uint64
	for _, sp := range spans {
		if sp.Event == "MachineTrap.Syscall" && sp.Raise != 0 {
			first = sp.Raise
			break
		}
	}
	fmt.Println("\n-- trace of the first Syscall raise --")
	for _, sp := range spans {
		if sp.Raise == first {
			pass := ""
			if sp.Kind.String() == "guard" {
				pass = "[fail]"
				if sp.Pass {
					pass = "[pass]"
				}
			}
			fmt.Printf("%-12v %-28s %-6s cost=%v\n", sp.Kind, sp.Name, pass, sp.Cost)
		}
	}
}

// imageNamed wraps mach.Image with a unique domain name so two instances
// can coexist.
func imageNamed(e *mach.Emulator, name string) *spin.ExtensionImage {
	img := mach.Image(e)
	img.Name = name
	return img
}
