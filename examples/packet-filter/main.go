// Packet filter: the paper's §3.2 networking experiment in miniature. Two
// simulated machines on a 10 Mb/s Ethernet exchange 8-byte UDP datagrams;
// guards on Udp.PacketArrived discriminate on the destination port. The
// example prints the roundtrip latency as inactive guarded endpoints are
// added — the shape of Table 2 — and demonstrates an inline predicate
// guard beating an out-of-line one.
//
//	go run ./examples/packet-filter
package main

import (
	"fmt"
	"log"

	"spin/internal/bench"
	"spin/internal/dispatch"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"

	"spin"
)

func main() {
	fmt.Println("-- Table 2 in miniature: UDP roundtrip vs. installed guards --")
	for _, guards := range []int{1, 5, 10, 50} {
		rt, err := bench.Table2Roundtrip(guards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d guards: %6.1f us\n", guards, vtime.InMicros(rt))
	}

	fmt.Println("\n-- port demultiplexing with guards --")
	a, err := kernel.Boot(kernel.Config{Name: "a", Metered: true})
	if err != nil {
		log.Fatal(err)
	}
	b, err := kernel.Boot(kernel.Config{Name: "b", ShareWith: a})
	if err != nil {
		log.Fatal(err)
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, _ := link.Attach("mac-a")
	nicB, _ := link.Attach("mac-b")
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		log.Fatal(err)
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		log.Fatal(err)
	}

	// Three services on B, each an event handler guarded on its port.
	// Binding a socket IS installing a guarded handler on the packet
	// event — that is the paper's protocol architecture.
	dns, _ := sb.BindUDP(53)
	ntp, _ := sb.BindUDP(123)
	echo, _ := sb.BindUDP(7)

	// An extension can also watch packets directly with an inline
	// predicate guard: here, a monitor counting privileged-port traffic
	// without a single indirect call in its guard path.
	privileged := 0
	_, err = sb.UDPArrived.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Monitor.Privileged", Module: rtti.NewModule("Monitor"),
			Sig: rtti.Sig(nil, rtti.Word, netstack.PacketType)},
		Fn: func(any, []any) any { privileged++; return nil },
	}, dispatch.WithGuard(dispatch.Guard{Pred: spin.PredArgLt(0, 1024)}))
	if err != nil {
		log.Fatal(err)
	}

	src, _ := sa.BindUDP(5000)
	for _, dst := range []uint16{53, 7, 123, 53, 9999, 2049} {
		_ = src.Send("10.0.0.2", dst, []byte("datagram"))
	}
	a.Sim.Run(0)

	fmt.Printf("  dns received:  %d\n", dns.Received)
	fmt.Printf("  ntp received:  %d\n", ntp.Received)
	fmt.Printf("  echo received: %d\n", echo.Received)
	fmt.Printf("  dropped (no endpoint): %d\n", sb.UDPDrops)
	fmt.Printf("  privileged-port monitor: %d\n", privileged)

	// An echo strand shows the full application loop.
	fmt.Println("\n-- echo service --")
	b.Sched.Spawn("echo", 1, func(st *sched.Strand) sched.Status {
		for {
			pkt, ok := echo.Recv()
			if !ok {
				break
			}
			_ = echo.Send(pkt.SrcIP, pkt.SrcPort, pkt.Payload)
		}
		echo.AwaitPacket(st)
		return sched.Block
	})
	start := a.Clock.Now()
	_ = src.Send("10.0.0.2", 7, []byte("payload!"))
	a.Sim.Run(0)
	for {
		pkt, ok := src.Recv()
		if !ok {
			break
		}
		fmt.Printf("  echoed %q within %.1f us\n", pkt.Payload,
			vtime.InMicros(a.Clock.Now().Sub(start)))
	}
}
