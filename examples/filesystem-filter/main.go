// Filesystem filter: the paper's two file-system composition examples.
//
// §2.3: "an extension can provide the MS-DOS file name space over a UNIX
// file system by transparently converting file names from one standard to
// the other" — a filter handler that rewrites the path argument seen by
// handlers ordered after it, while the raiser's value is preserved.
//
// §2.6: lazy replication — "the original code should perform the write
// synchronously, but the replication can be done asynchronously" — an
// asynchronous handler on the write event.
//
//	go run ./examples/filesystem-filter
package main

import (
	"fmt"
	"log"

	"spin/internal/dispatch"
	"spin/internal/fs"
	"spin/internal/vtime"
)

func main() {
	clock := &vtime.Clock{}
	cpu := vtime.NewCPU(clock, vtime.AlphaModel())
	sim := vtime.NewSimulator(clock)
	d := dispatch.New(dispatch.WithCPU(cpu), dispatch.WithSimulator(sim))

	primary, err := fs.New(d, cpu, "")
	if err != nil {
		log.Fatal(err)
	}
	replica, err := fs.New(d, nil, "replica:")
	if err != nil {
		log.Fatal(err)
	}

	// Load the MS-DOS name space extension: filters on Fs.Open and
	// Fs.Remove installed First, so every later handler — including the
	// intrinsic implementation — sees UNIX names.
	if _, err := fs.InstallDosFilter(primary); err != nil {
		log.Fatal(err)
	}
	// Load the lazy-replication extension: an asynchronous handler on
	// Fs.Write installed Last.
	repl, err := fs.InstallReplicator(primary, replica)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- a DOS program writes through the UNIX file system --")
	fd, err := primary.Open("C:\\CONFIG\\AUTOEXEC.BAT")
	if err != nil {
		log.Fatal(err)
	}
	_ = primary.Write(fd, []byte("@echo off\r\n"))
	_ = primary.Write(fd, []byte("win\r\n"))
	_ = primary.Close(fd)

	fmt.Println("primary files:", primary.List("/"))
	fmt.Println("replica files (before the detached replication threads run):",
		replica.List("/"))

	// The raiser has already moved on; the replication happens on
	// detached threads of control (simulated time here).
	sim.Run(0)
	fmt.Println("replica files (after):", replica.List("/"))
	if content, ok := replica.Get("/config/autoexec.bat"); ok {
		fmt.Printf("replica content: %q\n", content)
	}
	fmt.Println("replicated writes:", repl.Applied)

	// UNIX names pass through the filter untouched, and both name
	// spaces reach the same files.
	fmt.Println("\n-- both name spaces address the same file --")
	fd2, _ := primary.Open("/config/autoexec.bat")
	data, _ := primary.Read(fd2, 100)
	fmt.Printf("read via UNIX name: %q\n", data)
	_ = primary.Close(fd2)

	ok, _ := primary.Remove("C:\\CONFIG\\AUTOEXEC.BAT")
	fmt.Println("removed via DOS name:", ok)
	fmt.Println("primary files now:", primary.List("/"))

	// Unload the replicator: writes stop propagating — the configuration
	// changed without touching the file system or its clients.
	fmt.Println("\n-- dynamic unload --")
	if err := repl.Uninstall(); err != nil {
		log.Fatal(err)
	}
	fd3, _ := primary.Open("/var/log")
	_ = primary.Write(fd3, []byte("not replicated"))
	sim.Run(0)
	fmt.Println("replica sees /var/log:", replica.Exists("/var/log"))
}
