// Quickstart: the core event vocabulary of the SPIN dispatcher in one
// file — defining an event, the intrinsic handler, guarded handlers,
// ordering, closures, result merging, and the dynamic reconfiguration
// idiom (deregister the intrinsic, install a replacement).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spin"
)

var module = spin.NewModule("Quickstart")

func main() {
	d := spin.NewDispatcher()

	// 1. Every procedure is potentially an event. Here Console.Print is
	// defined with its intrinsic handler — the procedure of the same
	// name. With only the intrinsic installed, raising the event IS a
	// procedure call (the dispatcher bypasses itself).
	print, err := spin.NewEvent1[string](d, "Console.Print",
		spin.WithIntrinsic(spin.Handler{
			Proc: &spin.Proc{Name: "Console.Print", Module: module,
				Sig: spin.Sig(nil, spin.Text)},
			Fn: func(clo any, args []any) any {
				fmt.Println("console:", args[0])
				return nil
			},
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- procedure-call case (intrinsic only) --")
	_ = print.Raise("hello, extensible world")

	// 2. Extensions interpose without the console module's involvement:
	// a logger that only fires for lines containing "error" (a guard),
	// placed before the intrinsic (an ordering constraint).
	logged := 0
	guard := print.Guard("Logger.IsError", module, func(s string) bool {
		return len(s) >= 5 && s[:5] == "error"
	})
	if _, err := print.Install("Logger.Capture", module, func(s string) {
		logged++
		fmt.Println("logger:", s)
	}, spin.WithGuard(guard), spin.First()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- guarded multicast --")
	_ = print.Raise("error: disk full")
	_ = print.Raise("all quiet")
	fmt.Println("logger captured", logged, "line(s)")

	// 3. Result events: multiple pagers vote on a page fault and a
	// result handler merges with logical OR — the paper's VM.PageFault.
	fault, err := spin.NewFuncEvent2[uint64, uint64, bool](d, "VM.PageFault")
	if err != nil {
		log.Fatal(err)
	}
	_ = fault.Underlying().SetResultHandler(func(acc, r any, i int) any {
		a, _ := acc.(bool)
		b, _ := r.(bool)
		return a || b
	})
	_, _ = fault.Install("PagerA", module, func(space, addr uint64) bool {
		return addr < 0x1000 // only pages in the low segment
	})
	_, _ = fault.Install("PagerB", module, func(space, addr uint64) bool {
		return false // never claims anything
	})
	fmt.Println("\n-- result merging --")
	ok, _ := fault.Raise(1, 0x800)
	fmt.Println("fault at 0x800 accessible:", ok)
	ok, _ = fault.Raise(1, 0x8000)
	fmt.Println("fault at 0x8000 accessible:", ok)

	// 4. Dynamic rebinding: deregister the intrinsic handler and install
	// an alternate implementation — the paper's idiom for replacing a
	// procedure's implementation at runtime.
	fmt.Println("\n-- dynamic rebinding --")
	raw := print.Underlying()
	if err := raw.Uninstall(raw.IntrinsicBinding()); err != nil {
		log.Fatal(err)
	}
	_, _ = print.Install("FancyConsole.Print", module, func(s string) {
		fmt.Println(">>", s, "<<")
	})
	_ = print.Raise("same call site, new implementation")

	// 5. Closures: the same handler installed twice with different
	// closures, invoked independently for each installation.
	fmt.Println("\n-- closures --")
	tagSig := spin.Signature{Args: []spin.Type{spin.RefAny, spin.Text}}
	tagged := spin.Handler{
		Proc: &spin.Proc{Name: "Tagger.Print", Module: module, Sig: tagSig},
		Fn: func(closure any, args []any) any {
			fmt.Printf("[%v] %v\n", closure, args[0])
			return nil
		},
	}
	_, _ = raw.Install(tagged, spin.WithClosure("audit"))
	_, _ = raw.Install(tagged, spin.WithClosure("debug"))
	_ = print.Raise("closures distinguish installations")

	// 6. Statistics, the substrate of the paper's Table 3.
	s := raw.Stats()
	fmt.Printf("\nConsole.Print: raised %d times, %d handlers, %d guards installed\n",
		s.Raised, s.Handlers, s.Guards)
}
