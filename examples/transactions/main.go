// Transactions: the paper's distributed transaction system (§3 lists it
// among SPIN's integrated applications) running two-phase commit across
// three simulated machines. Resource managers are guarded event handlers;
// a participant's vote is the logical AND of its managers' answers — the
// dual of VM.PageFault's logical-OR merge.
//
//	go run ./examples/transactions
package main

import (
	"fmt"
	"log"

	"spin/internal/dispatch"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/txn"
)

// account is a trivially transactional bank account.
type account struct {
	name    string
	balance int
	pending map[uint64]int // txid -> delta reserved at prepare
}

// attach installs the account as a resource manager on a participant,
// scoped by a guard to operations mentioning it.
func (a *account) attach(p *txn.Participant) error {
	guard := txn.OpGuard(a.name + ":")
	prepSig := p.Prepare.Signature()
	applySig := p.Commit.Signature()
	parse := func(op string) int {
		var delta int
		_, _ = fmt.Sscanf(op[len(a.name)+1:], "%d", &delta)
		return delta
	}
	_, err := p.Prepare.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: a.name + ".Prepare", Module: txn.Module, Sig: prepSig},
		Fn: func(clo any, args []any) any {
			txid, op := args[0].(uint64), args[1].(string)
			delta := parse(op)
			if a.balance+delta < 0 {
				fmt.Printf("  %s votes NO on %q (balance %d)\n", a.name, op, a.balance)
				return false
			}
			a.pending[txid] = delta
			fmt.Printf("  %s votes yes on %q\n", a.name, op)
			return true
		},
	}, dispatch.WithGuard(guard))
	if err != nil {
		return err
	}
	_, err = p.Commit.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: a.name + ".Commit", Module: txn.Module, Sig: applySig},
		Fn: func(clo any, args []any) any {
			txid := args[0].(uint64)
			if delta, ok := a.pending[txid]; ok {
				a.balance += delta
				delete(a.pending, txid)
			}
			return nil
		},
	}, dispatch.WithGuard(guard))
	if err != nil {
		return err
	}
	_, err = p.Abort.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: a.name + ".Abort", Module: txn.Module, Sig: applySig},
		Fn: func(clo any, args []any) any {
			delete(a.pending, args[0].(uint64))
			return nil
		},
	}, dispatch.WithGuard(guard))
	return err
}

func main() {
	coordM, err := kernel.Boot(kernel.Config{Name: "coord", Metered: true})
	if err != nil {
		log.Fatal(err)
	}
	link := netwire.NewLink(coordM.Sim, 0, 0)
	arp := map[string]string{
		"10.2.0.1": "mac-c", "10.2.0.2": "mac-p0", "10.2.0.3": "mac-p1",
	}
	nicC, _ := link.Attach("mac-c")
	sc, err := netstack.New(netstack.Config{Dispatcher: coordM.Dispatcher,
		CPU: coordM.CPU, Sched: coordM.Sched, NIC: nicC, IP: "10.2.0.1", ARP: arp})
	if err != nil {
		log.Fatal(err)
	}

	// Two participant machines, one account each.
	accounts := []*account{
		{name: "alice", balance: 100, pending: map[uint64]int{}},
		{name: "bob", balance: 20, pending: map[uint64]int{}},
	}
	for i, acct := range accounts {
		m, err := kernel.Boot(kernel.Config{Name: acct.name, ShareWith: coordM})
		if err != nil {
			log.Fatal(err)
		}
		nic, _ := link.Attach(fmt.Sprintf("mac-p%d", i))
		stack, err := netstack.New(netstack.Config{Dispatcher: m.Dispatcher,
			CPU: m.CPU, Sched: m.Sched, NIC: nic,
			IP: fmt.Sprintf("10.2.0.%d", i+2), ARP: arp,
			Prefix: acct.name + ":"})
		if err != nil {
			log.Fatal(err)
		}
		p, err := txn.NewParticipant(m.Dispatcher, stack, m.Sched, acct.name+":")
		if err != nil {
			log.Fatal(err)
		}
		if err := acct.attach(p); err != nil {
			log.Fatal(err)
		}
	}

	c, err := txn.NewCoordinator(sc, coordM.Sched, []string{"10.2.0.2", "10.2.0.3"})
	if err != nil {
		log.Fatal(err)
	}

	// A transfer is two scoped operations under one transaction per
	// participant machine: alice pays 30, bob receives 30 — and a second
	// transfer that bob cannot cover.
	run := func(label, op string) {
		fmt.Printf("\n-- %s: %q --\n", label, op)
		_, _ = c.Begin(op, func(o txn.Outcome) {
			fmt.Printf("  outcome: %v\n", o)
		})
		coordM.Sim.Run(0)
	}
	run("transfer 1a", "alice:-30")
	run("transfer 1b", "bob:+30")
	run("transfer 2a", "bob:-500") // overdraft: bob votes no

	fmt.Println("\n-- final balances --")
	for _, a := range accounts {
		fmt.Printf("  %s: %d\n", a.name, a.balance)
	}
	fmt.Println("\n" + c.String())
}
