// Webserver: the SPIN project served its home page from "an Alpha
// workstation running SPIN with a WEB server extension" (paper §4). This
// example boots that scenario in simulation: a machine running the web
// server extension over the netstack and fs substrates, a second machine
// fetching pages — and, because request handling is itself an event
// (Httpd.Request), three more extensions compose onto the running server
// without it knowing: a legacy-URL filter, a dynamic /stats route behind a
// guard, and an access logger.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"spin/internal/dispatch"
	"spin/internal/fs"
	"spin/internal/httpd"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/trace"
	"spin/internal/vtime"
)

func main() {
	// Boot the server machine and a client machine on one wire. The
	// server machine traces every raise; a short excerpt prints at the
	// end (cmd/spintrace replays this scenario with full export options).
	tracer := trace.New(trace.Config{Capacity: 16384})
	a, err := kernel.Boot(kernel.Config{Name: "spin", Metered: true, Trace: tracer})
	if err != nil {
		log.Fatal(err)
	}
	b, err := kernel.Boot(kernel.Config{Name: "browser", ShareWith: a})
	if err != nil {
		log.Fatal(err)
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, _ := link.Attach("mac-a")
	nicB, _ := link.Attach("mac-b")
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		log.Fatal(err)
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		log.Fatal(err)
	}

	// The document tree.
	fsA, err := fs.New(a.Dispatcher, a.CPU, "")
	if err != nil {
		log.Fatal(err)
	}
	fsA.Put("/www/index.html", []byte("<h1>The SPIN Project</h1>"))
	fsA.Put("/www/papers/events.ps", []byte("%!PS Dynamic Binding for an Extensible System"))

	// The web server extension. Idle connections are reaped after 50ms of
	// virtual time; no connection lives past one virtual second.
	srv, err := httpd.New(a.Dispatcher, httpd.Config{Stack: sa, FS: fsA, Sched: a.Sched,
		ReadTimeout: vtime.Micros(50000), WriteTimeout: vtime.Micros(1000000)})
	if err != nil {
		log.Fatal(err)
	}

	// Extension 1: legacy-URL filter — uppercase 1994-era links keep
	// working. A filter rewrites the path argument before the intrinsic
	// file server sees it.
	fsig := rtti.Signature{Args: []rtti.Type{rtti.Text},
		ByRef: []bool{true}, Result: httpd.ResponseType}
	_, err = srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Legacy.Rewrite", Module: rtti.NewModule("Legacy"), Sig: fsig},
		Fn: func(clo any, args []any) any {
			if p, ok := args[0].(string); ok {
				args[0] = strings.ToLower(p)
			}
			return nil
		},
	}, dispatch.AsFilter(), dispatch.First())
	if err != nil {
		log.Fatal(err)
	}

	// Extension 2: a dynamic /stats route behind a guard.
	sig := srv.Request.Signature()
	_, err = srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Stats.Serve", Module: rtti.NewModule("Stats"), Sig: sig},
		Fn: func(clo any, args []any) any {
			body := fmt.Sprintf("served=%d notfound=%d uptime=%v\n",
				srv.Served, srv.NotFound, vtime.Duration(a.Clock.Now()))
			return &httpd.Response{Status: 200, Body: []byte(body)}
		},
	}, dispatch.WithGuard(httpd.RouteGuard("/stats")))
	if err != nil {
		log.Fatal(err)
	}

	// Extension 3: an access logger, ordered last, contributing no
	// response. With several result-producing handlers on the event, a
	// result handler arbitrates: first 200 wins, nils ignored.
	var accessLog []string
	_, err = srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Log.Access", Module: rtti.NewModule("Log"), Sig: sig},
		Fn: func(clo any, args []any) any {
			accessLog = append(accessLog, args[0].(string))
			return (*httpd.Response)(nil)
		},
	}, dispatch.Last())
	if err != nil {
		log.Fatal(err)
	}
	err = srv.Request.SetResultHandler(func(acc, res any, i int) any {
		if a, ok := acc.(*httpd.Response); ok && a != nil && a.Status == 200 {
			return a
		}
		if b, ok := res.(*httpd.Response); ok && b != nil {
			if a, ok := acc.(*httpd.Response); !ok || a == nil || b.Status == 200 {
				return b
			}
		}
		return acc
	})
	if err != nil {
		log.Fatal(err)
	}

	// The browser machine fetches four URLs over simulated TCP.
	paths := []string{"/", "/PAPERS/EVENTS.PS", "/stats", "/missing"}
	client, err := httpd.NewClient(sb, "10.0.0.1", 80)
	if err != nil {
		log.Fatal(err)
	}
	sent := false
	b.Sched.Spawn("browser", 0, func(st *sched.Strand) sched.Status {
		if !client.Conn().Established() {
			client.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			for _, p := range paths {
				_ = client.Get(p)
			}
		}
		client.Pump()
		if len(client.Responses) >= len(paths) {
			_ = client.Conn().Close()
			return sched.Done
		}
		client.Conn().AwaitData(st)
		return sched.Block
	})
	a.Sim.Run(0)

	fmt.Println("-- responses over the simulated wire --")
	for i, r := range client.Responses {
		body := strings.TrimSpace(string(r.Body))
		if len(body) > 48 {
			body = body[:48] + "..."
		}
		fmt.Printf("GET %-20s -> %d %s\n", paths[i], r.Status, body)
	}
	fmt.Println("\naccess log:", accessLog)
	fmt.Printf("server counters: served=%d notfound=%d badreqs=%d\n",
		srv.Served, srv.NotFound, srv.BadReqs)
	st := srv.Request.Stats()
	fmt.Printf("Httpd.Request event: raised=%d handlers=%d guards=%d\n",
		st.Raised, st.Handlers, st.Guards)
	fmt.Printf("virtual time elapsed: %v\n", vtime.Duration(a.Clock.Now()))

	// One traced raise's causal structure: the last Httpd.Request raise,
	// span by span (filter -> intrinsic -> guard -> handlers -> merges).
	spans := tracer.Snapshot()
	var last uint64
	for _, sp := range spans {
		if sp.Event == "Httpd.Request" {
			last = sp.Raise
		}
	}
	fmt.Println("\n-- trace of the last Httpd.Request raise --")
	for _, sp := range spans {
		if sp.Raise == last {
			fmt.Printf("%-12v %-36s cost=%v\n", sp.Kind, sp.Name, sp.Cost)
		}
	}

	// Graceful shutdown on SIGTERM: the signal handler calls
	// srv.Shutdown, which stops the accept loop and wakes every live
	// connection so it finishes its buffered requests and closes. The
	// example delivers the signal to itself; a real deployment would get
	// it from the operator.
	keepalive, err := httpd.NewClient(sb, "10.0.0.1", 80)
	if err != nil {
		log.Fatal(err)
	}
	got := false
	b.Sched.Spawn("keepalive", 0, func(st *sched.Strand) sched.Status {
		if !keepalive.Conn().Established() {
			keepalive.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !got {
			got = true
			_ = keepalive.Get("/")
		}
		keepalive.Pump()
		if keepalive.Conn().EOF() {
			_ = keepalive.Conn().Close()
			return sched.Done
		}
		keepalive.Conn().AwaitData(st)
		return sched.Block
	})

	// The operator's SIGTERM lands 10 virtual milliseconds in — after the
	// keep-alive request is served, before the idle reaper would fire.
	// The example signals itself and waits for delivery; a real
	// deployment's handler goroutine would do the <-sigc and Shutdown.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	a.Sim.After(vtime.Micros(10000), func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		<-sigc
		srv.Shutdown()
	})
	a.Sim.Run(0)
	fmt.Printf("\nSIGTERM received: drained=%v timedout=%d (keep-alive connection closed after %d responses)\n",
		srv.Drained(), srv.TimedOut, len(keepalive.Responses))
}
