package spin

// Benchmark-regression smoke gate for the specialized inline plan. It is
// opt-in (SPIN_BENCH_SMOKE=1, `make benchsmoke`) because it measures native
// time: absolute ns/op vary wildly across hosts, so the gate compares the
// *ratio* of the inline plan to the single-handler bypass on the same
// machine in the same process — the quantity the specialization work
// optimizes and BENCH_dispatch.json records — and fails if it regresses
// more than 25% past the committed figure.

import (
	"encoding/json"
	"os"
	"sync/atomic"
	"testing"

	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/kernel"
	"spin/internal/remote"
	"spin/internal/rtti"
	"spin/internal/shard"
)

// smokeTrajectory is the subset of the BENCH_dispatch.json schema the gate
// reads: the most recent entry carrying a native.smoke section wins.
type smokeTrajectory struct {
	Entries []struct {
		Date   string `json:"date"`
		Native struct {
			Smoke *struct {
				InlineBypassRatio float64 `json:"inline_bypass_ratio"`
				TolerancePct      float64 `json:"tolerance_pct"`
				// Batch64SingleRatio is a floor, not a midpoint: a
				// 64-frame RaiseBatch1 train on the bypass shape must
				// sustain at least this multiple of single-raise
				// throughput. Tolerance is baked into the figure.
				Batch64SingleRatio float64 `json:"batch64_single_ratio"`
				// RemoteLocalRatio is a ceiling with tolerance baked in: a
				// local bypass raise on a machine with the remote
				// subsystem resident (receiver serving, peer constructed,
				// wire traffic already exchanged) must cost at most this
				// multiple of the same raise on a machine without it.
				RemoteLocalRatio float64 `json:"remote_local_ratio"`
				// ShardRoutedLocalRatio is a ceiling with tolerance baked
				// in: a synchronous bypass raise through a 4-shard
				// router's pinned route must cost at most this multiple
				// of the same raise on a bare dispatcher event.
				ShardRoutedLocalRatio float64 `json:"shard_routed_local_ratio"`
			} `json:"smoke"`
		} `json:"native"`
	} `json:"entries"`
}

// measureSerialNs runs fn through testing.Benchmark and reports ns/op,
// failing the test if any iteration allocates (the smoke gate doubles as an
// allocation tripwire on both shapes).
func measureSerialNs(t *testing.T, label string, ev *dispatch.Event) float64 {
	t.Helper()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Raise1(uint64(7)); err != nil {
				b.Fatal(err)
			}
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("%s: %d allocs/op, want 0", label, allocs)
	}
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// TestBenchSmokeInlinePlan is the opt-in perf gate: the specialized
// inline-plan raise must stay within the committed inline/bypass ratio
// plus tolerance. Run via `make benchsmoke`.
func TestBenchSmokeInlinePlan(t *testing.T) {
	if os.Getenv("SPIN_BENCH_SMOKE") != "1" {
		t.Skip("benchmark smoke gate is opt-in: set SPIN_BENCH_SMOKE=1 (make benchsmoke)")
	}

	raw, err := os.ReadFile("BENCH_dispatch.json")
	if err != nil {
		t.Fatalf("reading trajectory file: %v", err)
	}
	var traj smokeTrajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatalf("parsing BENCH_dispatch.json: %v", err)
	}
	committed, tolerance := 0.0, 25.0
	for _, e := range traj.Entries {
		if s := e.Native.Smoke; s != nil && s.InlineBypassRatio > 0 {
			committed = s.InlineBypassRatio
			if s.TolerancePct > 0 {
				tolerance = s.TolerancePct
			}
		}
	}
	if committed == 0 {
		t.Fatal("no entry in BENCH_dispatch.json carries native.smoke.inline_bypass_ratio")
	}

	// The bypass shape: one unguarded intrinsic handler, dispatched as a
	// direct call — the floor the specialized plan is measured against.
	sig := rtti.Sig(nil, rtti.Word)
	bd := dispatch.New()
	bypassEv, err := bd.DefineEvent("Smoke.Bypass", sig, dispatch.WithIntrinsic(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Smoke.H", Module: benchMod, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	}))
	if err != nil {
		t.Fatal(err)
	}

	// The inline-plan shape mirrors BenchmarkRaiseParallel/inline-plan:
	// five guarded inline handlers, one word argument, bypass disabled.
	id := dispatch.New(dispatch.WithCodegenOptions(codegen.Options{DisableBypass: true}))
	inlineEv, err := id.DefineEvent("Smoke.Inline", sig)
	if err != nil {
		t.Fatal(err)
	}
	var cell atomic.Uint64
	for i := 0; i < 5; i++ {
		if _, err := inlineEv.Install(dispatch.Handler{
			Proc:   &rtti.Proc{Name: "Smoke.H", Module: benchMod, Sig: sig},
			Inline: codegen.Nop(),
		}, dispatch.WithGuard(dispatch.Guard{Pred: codegen.GlobalEq(&cell, 0)})); err != nil {
			t.Fatal(err)
		}
	}

	// Warm both paths, then interleave measurements so slow drift (thermal,
	// noisy neighbors) hits both shapes roughly equally.
	measureSerialNs(t, "warmup-bypass", bypassEv)
	measureSerialNs(t, "warmup-inline", inlineEv)
	bestRatio := 0.0
	for trial := 0; trial < 3; trial++ {
		bypassNs := measureSerialNs(t, "bypass", bypassEv)
		inlineNs := measureSerialNs(t, "inline-plan", inlineEv)
		ratio := inlineNs / bypassNs
		t.Logf("trial %d: bypass %.1f ns/op, inline-plan %.1f ns/op, ratio %.2fx", trial, bypassNs, inlineNs, ratio)
		if bestRatio == 0 || ratio < bestRatio {
			bestRatio = ratio
		}
	}

	limit := committed * (1 + tolerance/100)
	if bestRatio > limit {
		t.Errorf("inline-plan/bypass ratio %.2fx exceeds committed %.2fx + %.0f%% tolerance (%.2fx): specialization regressed",
			bestRatio, committed, tolerance, limit)
	}
}

// measureBatchNs reports per-frame ns for 64-frame RaiseBatch1 trains,
// failing the test if any iteration allocates: the batched hot path must
// stay allocation-free just like the single-raise one.
func measureBatchNs(t *testing.T, label string, ev *dispatch.Event) float64 {
	t.Helper()
	const n = 64
	flat := make([]any, n)
	for i := range flat {
		flat[i] = uint64(7)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += n {
			if out := ev.RaiseBatch1(flat); out.Raised != n {
				b.Fatalf("RaiseBatch1: raised %d of %d", out.Raised, n)
			}
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("%s: %d allocs/op, want 0", label, allocs)
	}
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// TestBenchSmokeBatch is the opt-in perf gate for the batched raise
// ingress: a 64-frame RaiseBatch1 train on the single-handler bypass shape
// must sustain at least the committed multiple of single-raise throughput
// (native.smoke.batch64_single_ratio in BENCH_dispatch.json — a floor with
// tolerance baked in). Run via `make benchsmoke`.
func TestBenchSmokeBatch(t *testing.T) {
	if os.Getenv("SPIN_BENCH_SMOKE") != "1" {
		t.Skip("benchmark smoke gate is opt-in: set SPIN_BENCH_SMOKE=1 (make benchsmoke)")
	}

	raw, err := os.ReadFile("BENCH_dispatch.json")
	if err != nil {
		t.Fatalf("reading trajectory file: %v", err)
	}
	var traj smokeTrajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatalf("parsing BENCH_dispatch.json: %v", err)
	}
	floor := 0.0
	for _, e := range traj.Entries {
		if s := e.Native.Smoke; s != nil && s.Batch64SingleRatio > 0 {
			floor = s.Batch64SingleRatio
		}
	}
	if floor == 0 {
		t.Fatal("no entry in BENCH_dispatch.json carries native.smoke.batch64_single_ratio")
	}

	sig := rtti.Sig(nil, rtti.Word)
	d := dispatch.New()
	ev, err := d.DefineEvent("Smoke.Batch", sig, dispatch.WithIntrinsic(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Smoke.H", Module: benchMod, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	}))
	if err != nil {
		t.Fatal(err)
	}

	// Warm both paths, then interleave measurements so slow drift hits the
	// single and batched measurements roughly equally.
	measureSerialNs(t, "warmup-single", ev)
	measureBatchNs(t, "warmup-batch", ev)
	bestSpeedup := 0.0
	for trial := 0; trial < 3; trial++ {
		singleNs := measureSerialNs(t, "single", ev)
		batchNs := measureBatchNs(t, "batch-64", ev)
		speedup := singleNs / batchNs
		t.Logf("trial %d: single %.1f ns/raise, batch-64 %.1f ns/raise, %.2fx", trial, singleNs, batchNs, speedup)
		if speedup > bestSpeedup {
			bestSpeedup = speedup
		}
	}

	if bestSpeedup < floor {
		t.Errorf("batch-64 speedup %.2fx is below the committed %.2fx floor: batched ingress regressed",
			bestSpeedup, floor)
	}
}

// TestBenchSmokeRemote is the opt-in no-regression gate for the remote
// subsystem's local path: with a receiver serving, a peer constructed, and
// wire traffic already exchanged on the measured machine, a purely local
// bypass raise must cost at most the committed multiple
// (native.smoke.remote_local_ratio, ceiling with tolerance baked in) of
// the same raise on a machine without the remote subsystem. Run via
// `make benchsmoke`.
func TestBenchSmokeRemote(t *testing.T) {
	if os.Getenv("SPIN_BENCH_SMOKE") != "1" {
		t.Skip("benchmark smoke gate is opt-in: set SPIN_BENCH_SMOKE=1 (make benchsmoke)")
	}

	raw, err := os.ReadFile("BENCH_dispatch.json")
	if err != nil {
		t.Fatalf("reading trajectory file: %v", err)
	}
	var traj smokeTrajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatalf("parsing BENCH_dispatch.json: %v", err)
	}
	ceiling := 0.0
	for _, e := range traj.Entries {
		if s := e.Native.Smoke; s != nil && s.RemoteLocalRatio > 0 {
			ceiling = s.RemoteLocalRatio
		}
	}
	if ceiling == 0 {
		t.Fatal("no entry in BENCH_dispatch.json carries native.smoke.remote_local_ratio")
	}

	sig := rtti.Sig(nil, rtti.Word)
	handler := func(name string) dispatch.Handler {
		return dispatch.Handler{
			Proc: &rtti.Proc{Name: name, Module: benchMod, Sig: sig},
			Fn:   func(any, []any) any { return nil },
		}
	}

	// Baseline: a metered machine with no network or remote subsystem.
	base, err := kernel.Boot(kernel.Config{Name: "base", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	baseEv, err := base.Dispatcher.DefineEvent("Smoke.Plain", sig,
		dispatch.WithIntrinsic(handler("Smoke.H")))
	if err != nil {
		t.Fatal(err)
	}

	// Subject: the two-machine drill rig, warmed with real wire traffic so
	// the remote subsystem is resident and live, then measured on a local
	// event that never touches it.
	rig, err := remote.NewBenchRig()
	if err != nil {
		t.Fatal(err)
	}
	subjEv, err := rig.Local.DefineEvent("Smoke.Resident", sig,
		dispatch.WithIntrinsic(handler("Smoke.H")))
	if err != nil {
		t.Fatal(err)
	}

	measureSerialNs(t, "warmup-plain", baseEv)
	measureSerialNs(t, "warmup-resident", subjEv)
	bestRatio := 0.0
	for trial := 0; trial < 3; trial++ {
		plainNs := measureSerialNs(t, "plain", baseEv)
		residentNs := measureSerialNs(t, "remote-resident", subjEv)
		ratio := residentNs / plainNs
		t.Logf("trial %d: plain %.1f ns/op, remote-resident %.1f ns/op, ratio %.2fx",
			trial, plainNs, residentNs, ratio)
		if bestRatio == 0 || ratio < bestRatio {
			bestRatio = ratio
		}
	}

	if bestRatio > ceiling {
		t.Errorf("remote-resident/plain local raise ratio %.2fx exceeds committed %.2fx ceiling: remote subsystem taxes the local path",
			bestRatio, ceiling)
	}
}

// TestBenchSmokeShard is the routing-plane tax gate: a synchronous bypass
// raise through a routed handle — 4 shards resident, route pinned at
// definition time — must stay within the committed multiple of the same
// raise on a bare dispatcher event. The routed path adds exactly one
// atomic route load and a nil check; the gate keeps it that way.
func TestBenchSmokeShard(t *testing.T) {
	if os.Getenv("SPIN_BENCH_SMOKE") != "1" {
		t.Skip("benchmark smoke gate is opt-in: set SPIN_BENCH_SMOKE=1 (make benchsmoke)")
	}

	raw, err := os.ReadFile("BENCH_dispatch.json")
	if err != nil {
		t.Fatalf("reading trajectory file: %v", err)
	}
	var traj smokeTrajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatalf("parsing BENCH_dispatch.json: %v", err)
	}
	ceiling := 0.0
	for _, e := range traj.Entries {
		if s := e.Native.Smoke; s != nil && s.ShardRoutedLocalRatio > 0 {
			ceiling = s.ShardRoutedLocalRatio
		}
	}
	if ceiling == 0 {
		t.Fatal("no entry in BENCH_dispatch.json carries native.smoke.shard_routed_local_ratio")
	}

	sig := rtti.Sig(nil, rtti.Word)
	intrinsic := dispatch.WithIntrinsic(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Smoke.H", Module: benchMod, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	})
	r, err := shard.NewRouter(shard.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	routedEv, err := r.DefineEvent("Smoke.Routed", sig, intrinsic)
	if err != nil {
		t.Fatal(err)
	}
	d := dispatch.New()
	plainEv, err := d.DefineEvent("Smoke.Unrouted", sig, intrinsic)
	if err != nil {
		t.Fatal(err)
	}

	measureRouted := func(label string) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := routedEv.Raise1(uint64(7)); err != nil {
					b.Fatal(err)
				}
			}
		})
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Fatalf("%s: %d allocs/op, want 0", label, allocs)
		}
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}

	measureRouted("warmup-routed")
	measureSerialNs(t, "warmup-unrouted", plainEv)
	bestRatio := 0.0
	for trial := 0; trial < 3; trial++ {
		plainNs := measureSerialNs(t, "unrouted", plainEv)
		routedNs := measureRouted("routed")
		ratio := routedNs / plainNs
		t.Logf("trial %d: unrouted %.1f ns/op, routed %.1f ns/op, ratio %.2fx",
			trial, plainNs, routedNs, ratio)
		if bestRatio == 0 || ratio < bestRatio {
			bestRatio = ratio
		}
	}

	if bestRatio > ceiling {
		t.Errorf("routed/unrouted bypass raise ratio %.2fx exceeds committed %.2fx ceiling: the routing plane taxes the raise path",
			bestRatio, ceiling)
	}
}
