GO ?= go

.PHONY: check vet build test race bench tables json

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The dispatcher and codegen packages are the concurrency-sensitive core:
# plan swaps race against raises, and the striped counters race against
# Stats(). Run them under the race detector.
race:
	$(GO) test -race ./internal/dispatch/ ./internal/codegen/

# Native (wall-clock) microbenchmarks, including the zero-allocation
# parallel raise path.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Calibrated virtual-time reproductions of the paper's tables.
tables:
	$(GO) run ./cmd/spinbench -table all

# Machine-readable virtual-time results (seeds BENCH_dispatch.json).
json:
	$(GO) run ./cmd/spinbench -json
