GO ?= go

.PHONY: check vet lint spinvet alloccheck build test race fuzz-smoke faultcheck overloadcheck journalcheck remotecheck shardcheck bench benchsmoke profile tables json

check: vet lint build test race

vet:
	$(GO) vet ./...

# Static verification of the SPIN safety attributes (paper §2.4): guard
# purity (FUNCTIONAL), handler terminability (EPHEMERAL), and descriptor
# consistency. Any diagnostic fails the build.
lint: spinvet

spinvet:
	$(GO) run ./cmd/spinvet ./...

# The standing allocation invariants from the fast-path, tracing, fault,
# overload, journal, and remote PRs: a synchronous raise stays 0-alloc
# with tracing off, with the fault policy on, with admission enabled but
# no policy, with the journal off or lifecycle-only, and with the remote
# subsystem compiled in and serving — and trace recording itself never
# allocates. AllocsPerRun is unreliable under the
# race detector, so this runs without -race.
alloccheck:
	$(GO) test -run 'ZeroAlloc|DoesNotAllocate' -count=1 ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Everything runs under the race detector: plan swaps race against raises,
# trace toggles race against both, the striped counters race against
# Stats(), and the scheduler's watchdogs race against ticks.
race:
	$(GO) test -race ./...

# A short differential-fuzzing pass over the dispatch code generator: the
# optimized plans (peephole, reordering, inlining, bypass, decision tree,
# traced twin) must agree with naive reference evaluation. Go runs one
# fuzz target per invocation.
fuzz-smoke:
	$(GO) test -fuzz FuzzPredCompile -fuzztime 10s -run '^$$' ./internal/codegen/
	$(GO) test -fuzz FuzzTreeDispatch -fuzztime 10s -run '^$$' ./internal/codegen/
	$(GO) test -fuzz FuzzBatchDispatch -fuzztime 10s -run '^$$' ./internal/codegen/
	$(GO) test -fuzz FuzzJournalReplay -fuzztime 10s -run '^$$' ./internal/dispatch/

# The fault-injection suite under the race detector: quarantine and
# probation recompiles race against concurrent raises, watchdog timers race
# against handler completion, and the ledger races against everything.
faultcheck:
	$(GO) test -race -count=2 -run 'Fault|Quarantine|Probation|Deadline|Inject|Ledger' ./internal/... .

# The overload-control suite under the race detector: the soak hammers an
# async event at ~10x drain capacity under every admission policy, retry
# backoff races the queue ledger, and degradation recompiles race against
# concurrent raises.
overloadcheck:
	$(GO) test -race -count=2 -run 'Overload|Shed|Admission|Admit|Degrad|Retry|Coalesce|Pool|Queue|Backoff|Timeout|Shutdown|Drain' ./internal/... .

# The journal suite under the race detector: frame/CRC round-trips,
# group-commit sealing, Merkle-chain tamper and truncation detection,
# crash-tail recovery, and the three-way replay differential (live
# source vs replayed twin vs symbolic oracle).
journalcheck:
	$(GO) test -race -count=2 -run 'Journal|Replay|Seal|Crash|Verify|Frame|GroupCommit|Sample|Tamper|Flush|Head|FileSink|Scan' ./internal/journal/ ./internal/dispatch/ ./internal/kernel/

# The remote-raise suite under the race detector: wire-codec corruption
# sweeps, breaker and dedup-window state machines, netwire fault
# injection, TCP teardown under abrupt peer death, and the two-machine
# retry/partition/heal drills.
remotecheck:
	$(GO) test -race -count=2 -run 'Remote|Breaker|Dedup|Wire|Partition|Heartbeat|Teardown|Abort|Inject|OutOfOrder|Drill' ./internal/remote/ ./internal/netstack/ ./internal/netwire/

# The sharded-plane suite under the race detector: routing stability while
# installs, raises, and reshards run concurrently; the reshard differential
# against a single-dispatcher oracle (identical fire traces, ledgers, and
# journal markers); and per-shard admission/fault-domain identity.
shardcheck:
	$(GO) test -race -count=2 -run 'Shard|Ring|Router|Reshard|Remote|ConcurrentDefine' ./internal/shard/ ./internal/kernel/

# Native (wall-clock) microbenchmarks, including the zero-allocation
# parallel raise path.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Benchmark-regression smoke gate: the specialized inline-plan raise must
# stay within 25% of the committed inline/bypass ratio recorded in
# BENCH_dispatch.json. Ratio-based so it is meaningful on any host.
benchsmoke:
	SPIN_BENCH_SMOKE=1 $(GO) test -run 'TestBenchSmokeInlinePlan|TestBenchSmokeBatch|TestBenchSmokeRemote|TestBenchSmokeShard' -count=1 -v .

# CPU profile of the parallel raise benchmarks. EXPERIMENTS.md ("Reading
# the inline-plan profile") explains what to look for in the output of
# `go tool pprof -top raise.prof`.
profile:
	$(GO) test -bench BenchmarkRaiseParallel -run '^$$' -benchtime 2s -cpuprofile raise.prof -o raise.test .
	$(GO) tool pprof -top -nodecount 15 raise.test raise.prof

# Calibrated virtual-time reproductions of the paper's tables.
tables:
	$(GO) run ./cmd/spinbench -table all

# Machine-readable virtual-time results (seeds BENCH_dispatch.json).
json:
	$(GO) run ./cmd/spinbench -json
