// Command spinvet is the driver for the spinvet static verifier
// (internal/analysis/spinvet): it proves — or refutes — the FUNCTIONAL and
// EPHEMERAL attributes that extensions declare in their rtti descriptors,
// before the dispatcher can trust them at install time (paper §2.4).
//
// Standalone use:
//
//	spinvet ./...            # analyze packages under the current module
//	spinvet -list            # list the analyzers in the suite
//
// It also speaks enough of the vet driver protocol to run under
// `go vet -vettool=$(which spinvet) ./...`: unit-checker invocations get
// the package's import path from the .cfg file and run a whole-module
// analysis scoped to that package, so diagnostics surface through the
// standard vet UI. Standalone mode is the primary (and faster) interface —
// it loads the module once instead of once per package.
//
// Exit status is 2 when any diagnostic is reported, 1 on operational
// errors, 0 on a clean run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"spin/internal/analysis/load"
	"spin/internal/analysis/spinvet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The vet driver probes capabilities before handing over work.
	if len(args) > 0 {
		switch args[0] {
		case "-V=full":
			// Version fingerprint for the build cache; content-addressing
			// by binary identity is beyond a hermetic build, so use a
			// fixed id — stale-cache risk is accepted for the vettool
			// path, CI uses standalone mode.
			fmt.Println("spinvet version spinvet-1")
			return 0
		case "-flags":
			fmt.Println("[]")
			return 0
		}
		if strings.HasSuffix(args[0], ".cfg") {
			return runVettool(args[0])
		}
	}

	fs := flag.NewFlagSet("spinvet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range spinvet.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return analyze(*dir, patterns, nil)
}

// analyze loads the module, runs the suite, and prints diagnostics for
// the matched (non-DepOnly) packages — or only for `only`, when set.
func analyze(dir string, patterns []string, only map[string]bool) int {
	prog, err := load.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spinvet:", err)
		return 1
	}
	var report []*load.Package
	for _, pkg := range prog.Packages {
		if pkg.DepOnly {
			continue
		}
		if only != nil && !only[pkg.PkgPath] {
			continue
		}
		if len(pkg.Errors) > 0 {
			fmt.Fprintf(os.Stderr, "spinvet: %s: %v\n", pkg.PkgPath, pkg.Errors[0])
			return 1
		}
		report = append(report, pkg)
	}
	diags := spinvet.Check(prog, report)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetCfg is the subset of the unit-checker config file spinvet consumes.
type vetCfg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// runVettool handles one `go vet -vettool` unit invocation. The unit
// checker analyzes one package per process; spinvet's facts want the whole
// module, so it reloads the module rooted at the package directory and
// scopes reporting to the unit's import path. Facts are recomputed per
// unit (correct, if slower than standalone mode).
func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spinvet:", err)
		return 1
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "spinvet: parsing", cfgPath+":", err)
		return 1
	}
	// Emit the (empty) facts file the driver expects regardless of
	// outcome, so downstream units are not blocked on an open() error.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "spinvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test packages (and their _test variants) are outside spinvet's
	// policy: tests deliberately build impure guards.
	if strings.HasSuffix(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	return analyze(dir, []string{"."}, map[string]bool{cfg.ImportPath: true})
}
