// Command spinjournal inspects and replays dispatcher lifecycle journals
// (see internal/journal and DESIGN.md decision 17).
//
//	spinjournal dump file.sj             print every record, batch by batch
//	spinjournal verify file.sj           strict tamper check (CRC + Merkle chain)
//	spinjournal verify -head HEX file.sj verify against an out-of-band head root
//	spinjournal replay file.sj           reconstruct and print the symbolic state
//
// verify exits non-zero on any in-place edit, mid-file truncation, or
// unsealed tail; replay applies only the sealed prefix and reports a
// crash tail without trusting it.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"spin/internal/journal"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := args[0], args[1:]
	var err error
	switch cmd {
	case "dump":
		err = dump(args)
	case "verify":
		err = verify(args)
	case "replay":
		err = replay(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "spinjournal %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  spinjournal dump <file>              print every record, batch by batch
  spinjournal verify [-head HEX] <file>  strict tamper check
  spinjournal replay <file>            reconstruct the symbolic state
`)
}

func readJournal(args []string) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("expected exactly one journal file, got %d args", len(args))
	}
	return os.ReadFile(args[0])
}

func dump(args []string) error {
	data, err := readJournal(args)
	if err != nil {
		return err
	}
	res := journal.Scan(data)
	for i, b := range res.Batches {
		fmt.Printf("batch %d (%d records, root %x...):\n", i, len(b.Records), b.Root[:8])
		for _, rec := range b.Records {
			printRecord(rec)
		}
	}
	if len(res.Tail) > 0 {
		fmt.Printf("unsealed tail (%d records, NOT durable):\n", len(res.Tail))
		for _, rec := range res.Tail {
			printRecord(rec)
		}
	}
	if res.Damaged {
		return fmt.Errorf("journal damaged after %d sealed batch(es): %v", len(res.Batches), res.Err)
	}
	fmt.Printf("%d sealed batch(es), %d sealed record(s), %d tail record(s)\n",
		len(res.Batches), len(res.SealedRecords()), len(res.Tail))
	return nil
}

func printRecord(rec journal.Record) {
	fmt.Printf("  %6d %-18s", rec.Seq, rec.Kind)
	if rec.ID != 0 {
		fmt.Printf(" id=%d", rec.ID)
	}
	if rec.RefID != 0 {
		fmt.Printf(" ref=%d", rec.RefID)
	}
	if rec.Event != "" {
		fmt.Printf(" event=%s", rec.Event)
	}
	if rec.Module != "" {
		fmt.Printf(" module=%s", rec.Module)
	}
	if rec.Handler != "" {
		fmt.Printf(" handler=%s", rec.Handler)
	}
	if rec.Flags != 0 {
		fmt.Printf(" flags=%#x", rec.Flags)
	}
	if rec.Priority != 0 {
		fmt.Printf(" pri=%d", rec.Priority)
	}
	if rec.A != 0 {
		fmt.Printf(" a=%d", rec.A)
	}
	if rec.B != 0 {
		fmt.Printf(" b=%d", rec.B)
	}
	fmt.Println()
}

func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	headHex := fs.String("head", "", "trusted head root (hex) to pin the journal's final seal against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := readJournal(fs.Args())
	if err != nil {
		return err
	}
	var rep journal.VerifyReport
	if *headHex != "" {
		raw, err := hex.DecodeString(*headHex)
		if err != nil || len(raw) != journal.HashSize {
			return fmt.Errorf("-head must be %d hex bytes", journal.HashSize)
		}
		var head [journal.HashSize]byte
		copy(head[:], raw)
		rep, err = journal.VerifyAgainst(data, head)
		if err != nil {
			return err
		}
	} else if rep, err = journal.Verify(data); err != nil {
		return err
	}
	fmt.Printf("OK: %d batch(es), %d record(s), head %x\n", rep.Batches, rep.Records, rep.Head)
	return nil
}

func replay(args []string) error {
	data, err := readJournal(args)
	if err != nil {
		return err
	}
	st := journal.NewState()
	sum, err := journal.Replay(data, st)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d sealed record(s) in %d batch(es)", sum.Records, sum.Batches)
	if sum.Tail > 0 {
		fmt.Printf("; %d unsealed tail record(s) ignored", sum.Tail)
	}
	if sum.Damaged {
		fmt.Printf("; journal DAMAGED after sealed prefix")
	}
	fmt.Println()
	fmt.Print(st.Summary())
	return nil
}
