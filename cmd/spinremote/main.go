// Command spinremote runs the two-machine remote-raise drill: machine A
// raises events across the simulated wire into machine B's dispatcher
// while the link degrades underneath it.
//
//	spinremote            run the drill with the default seed
//	spinremote -seed 7    reseed the lossy phase's fault plan
//
// Three phases, all in virtual time (byte-for-byte reproducible per
// seed):
//
//  1. Clean wire — measures the remote raise→ack round trip against the
//     same event dispatched locally: the latency crossover that decides
//     when remote binding is worth the wire.
//  2. Lossy wire — 10% seeded frame drop; idempotent retries and the
//     receiver's dedup window must deliver every accepted raise exactly
//     once.
//  3. Partition — the wire is cut mid-traffic: heartbeat misses declare
//     the partition, the circuit breaker force-opens, optional bound
//     raises re-route to local fallbacks or shed (visible in the
//     admission ledger), and after the heal the breaker walks
//     half-open → closed and traffic resumes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spin/internal/remote"
)

func main() {
	seed := flag.Uint64("seed", 42, "fault-plan seed for the lossy phase")
	flag.Parse()

	rep, err := remote.RunDrill(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spinremote: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("spinremote: two-machine remote raise drill (seed %d)\n\n", *seed)

	fmt.Println("phase 1: clean wire")
	fmt.Printf("  remote raise→ack RTT   %8.2f µs  (%d raises)\n", rep.CleanRTTUs, rep.CleanRaises)
	fmt.Printf("  local raise            %8.2f µs\n", rep.LocalRaiseUs)
	fmt.Printf("  crossover              %8.1fx  (local raises per remote round trip)\n\n", rep.CrossoverX)

	fmt.Printf("phase 2: lossy wire (%.0f%% drop)\n", rep.LossyDropRate*100)
	fmt.Printf("  raises                 %8d\n", rep.LossyRaises)
	fmt.Printf("  delivered              %8d\n", rep.LossyDelivered)
	fmt.Printf("  deduped                %8d  (retry landed after the original)\n", rep.LossyDeduped)
	fmt.Printf("  retried                %8d  transmission retries\n", rep.LossyRetried)
	fmt.Printf("  timed out              %8d\n", rep.LossyTimedOut)
	fmt.Printf("  frames dropped on wire %8d\n", rep.WireDrops)
	fmt.Printf("  applied on B           %8d  (handler fired %d times)\n", rep.LossyApplied, rep.LossyFired)
	if rep.LossyApplied == rep.LossyFired && rep.LossyDelivered+rep.LossyDeduped == rep.LossyApplied {
		fmt.Printf("  exactly-once           ok: every accepted raise fired once\n\n")
	} else {
		fmt.Printf("  exactly-once           VIOLATED\n\n")
	}

	fmt.Println("phase 3: partition, degradation, heal")
	fmt.Printf("  heartbeat misses       %8d\n", rep.HeartbeatMisses)
	fmt.Printf("  breaker trips          %8d\n", rep.BreakerTrips)
	fmt.Printf("  rerouted to fallback   %8d\n", rep.PartitionRerouted)
	fmt.Printf("  shed (ledger-visible)  %8d\n", rep.PartitionShed)
	fmt.Printf("  delivered after heal   %8d\n", rep.HealedDelivered)
	fmt.Printf("  breaker transitions    %s\n", strings.Join(rep.Transitions, ", "))
}
