// Command spinfault replays the webserver scenario under deterministic
// fault injection and prints the quarantine ledger: a flaky cache
// extension panics on a fixed cadence, exhausts its fault budget, is
// quarantined out of the Httpd.Request dispatch plan, and is later
// re-admitted on probation — all while the intrinsic file server keeps
// answering every request.
//
//	spinfault                      default drill: panic every 3rd request, budget 3
//	spinfault -requests 40 -every 2
//	spinfault -budget 5 -backoff 200ms
//
// The machine is metered, so the whole quarantine lifecycle (backoff,
// probation, restoration) runs in virtual time on the discrete-event
// simulator and the run is reproducible.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/fs"
	"spin/internal/httpd"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/trace"
	"spin/internal/vtime"
)

func main() {
	requests := flag.Int("requests", 24, "number of GET / requests to replay")
	every := flag.Uint64("every", 3, "inject a panic into every Nth cache invocation")
	budget := flag.Int("budget", 3, "faults per binding before quarantine")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "initial quarantine backoff (virtual time)")
	flag.Parse()

	tracer := trace.New(trace.Config{Capacity: 16384})
	policy := fault.DefaultPolicy()
	policy.Budget = *budget
	policy.Backoff = *backoff

	a, err := kernel.Boot(kernel.Config{Name: "spin", Metered: true,
		Trace: tracer, FaultPolicy: &policy})
	if err != nil {
		log.Fatal(err)
	}
	b, err := kernel.Boot(kernel.Config{Name: "browser", ShareWith: a})
	if err != nil {
		log.Fatal(err)
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, _ := link.Attach("mac-a")
	nicB, _ := link.Attach("mac-b")
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		log.Fatal(err)
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		log.Fatal(err)
	}

	fsA, err := fs.New(a.Dispatcher, a.CPU, "")
	if err != nil {
		log.Fatal(err)
	}
	fsA.Put("/www/index.html", []byte("<h1>The SPIN Project</h1>"))

	srv, err := httpd.New(a.Dispatcher, httpd.Config{Stack: sa, FS: fsA, Sched: a.Sched})
	if err != nil {
		log.Fatal(err)
	}

	// The flaky extension: a response cache that panics on every Nth
	// lookup, wired through the deterministic injection harness. It
	// contributes no response of its own, so the intrinsic file server
	// remains the source of truth — the drill measures isolation, not
	// redundancy.
	inj := fault.NewInjector().PanicEvery("Flaky.Cache", *every, 0)
	sig := srv.Request.Signature()
	flakyMod := rtti.NewModule("Flaky")
	flaky, err := srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Flaky.Cache", Module: flakyMod, Sig: sig},
		Fn: inj.Handler("Flaky.Cache", func(clo any, args []any) any {
			return (*httpd.Response)(nil)
		}),
	}, dispatch.First())
	if err != nil {
		log.Fatal(err)
	}
	// A healthy logging extension rides along to show unrelated bindings
	// are untouched by the quarantine.
	served := 0
	_, err = srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Log.Access", Module: rtti.NewModule("Log"), Sig: sig},
		Fn: func(clo any, args []any) any {
			served++
			return (*httpd.Response)(nil)
		},
	}, dispatch.Last())
	if err != nil {
		log.Fatal(err)
	}
	err = srv.Request.SetResultHandler(func(acc, res any, i int) any {
		if r, ok := res.(*httpd.Response); ok && r != nil {
			return r
		}
		return acc
	})
	if err != nil {
		log.Fatal(err)
	}

	// The browser machine issues the request storm over simulated TCP.
	client, err := httpd.NewClient(sb, "10.0.0.1", 80)
	if err != nil {
		log.Fatal(err)
	}
	sent := false
	b.Sched.Spawn("browser", 0, func(st *sched.Strand) sched.Status {
		if !client.Conn().Established() {
			client.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			for i := 0; i < *requests; i++ {
				_ = client.Get("/")
			}
		}
		client.Pump()
		if len(client.Responses) >= *requests {
			_ = client.Conn().Close()
			return sched.Done
		}
		client.Conn().AwaitData(st)
		return sched.Block
	})
	a.Sim.Run(0)

	ok, bad := 0, 0
	for _, r := range client.Responses {
		if r.Status == 200 {
			ok++
		} else {
			bad++
		}
	}
	fmt.Printf("-- %d requests over the simulated wire --\n", *requests)
	fmt.Printf("responses: %d OK, %d errors (every raise survived its faults)\n", ok, bad)
	fmt.Printf("flaky cache invocations: %d of %d requests (the gap is the quarantine window)\n",
		inj.Count("Flaky.Cache"), *requests)
	fmt.Printf("access logger saw %d requests (healthy bindings untouched)\n", served)

	ledger := a.Dispatcher.FaultLedger()
	fmt.Printf("\n-- quarantine ledger: %d faults recorded --\n", ledger.Total())
	for _, r := range ledger.Records() {
		fmt.Println("  ", r)
	}
	fmt.Printf("Flaky.Cache final state: %v (quarantine level %d, in plan: %v)\n",
		flaky.FaultState(), ledger.Level(flaky), !flaky.Quarantined())

	fmt.Println("\n-- lifecycle spans, in causal order --")
	for _, sp := range tracer.Snapshot() {
		switch sp.Kind {
		case trace.KindFault:
			fmt.Printf("  fault       %s on %s\n", sp.Name, sp.Event)
		case trace.KindQuarantine:
			fmt.Printf("  quarantine  %s on %s\n", sp.Name, sp.Event)
		case trace.KindProbation:
			verb := "probation"
			if sp.Pass {
				verb = "restored"
			}
			fmt.Printf("  %-11s %s on %s\n", verb, sp.Name, sp.Event)
		}
	}
	fmt.Printf("\nvirtual time elapsed: %v\n", vtime.Duration(a.Clock.Now()))
}
