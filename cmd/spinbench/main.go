// Command spinbench regenerates the microbenchmark tables of "Dynamic
// Binding for an Extensible System" (OSDI '96) from the virtual-time
// simulation:
//
//	spinbench -table 1        Table 1: dispatch latency grid
//	spinbench -table 2        Table 2: UDP roundtrip vs. guards
//	spinbench -table install  §3.1 installation overhead
//	spinbench -table async    §3.1 asynchronous event overhead
//	spinbench -table micro    §3.1 syscall/thread event overhead
//	spinbench -table faults   raise throughput under injected handler panics
//	spinbench -table overload throughput and shed rate vs. offered load
//	spinbench -table inline   specialization ablation on the inline plan
//	spinbench -table batch    batched raise ingress vs. single-raise loop
//	spinbench -table journal  lifecycle-journal raise overhead and group-commit latency
//	spinbench -table remote   two-machine remote raise drill (latency crossover, loss, partition)
//	spinbench -table shard    sharded-plane raise throughput scaling (1..8 shards)
//	spinbench -table all      everything
//	spinbench -disasm         dispatch plan disassembly tour
//
// All simulated figures are in the paper's units (microseconds on a DEC
// Alpha AXP 3000/400); the paper's own numbers print alongside.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spin/internal/admit"
	"spin/internal/bench"
	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/journal"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, tree, install, async, micro, faults, overload, inline, batch, all")
	disasm := flag.Bool("disasm", false, "show dispatch plan disassembly for representative events")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the formatted tables (seeds BENCH_dispatch.json)")
	flag.Parse()

	if *disasm {
		showDisasm()
		return
	}
	if *jsonOut {
		if err := emitJSON(os.Stdout, *table); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	run := func(name string, fn func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("1", table1)
	run("2", table2)
	run("tree", table2Tree)
	run("install", installOverhead)
	run("async", asyncOverhead)
	run("micro", micro)
	// The faults scenario measures native (wall-clock) time, so it is not
	// part of -table all: "all" stays the byte-for-byte deterministic
	// virtual-time set.
	if *table == "faults" {
		if err := faultsTable(); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: faults: %v\n", err)
			os.Exit(1)
		}
	}
	// The overload scenario likewise measures native time (goroutines,
	// wall-clock pacing), so it is opt-in rather than part of "all".
	if *table == "overload" {
		if err := overloadTable(); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: overload: %v\n", err)
			os.Exit(1)
		}
	}
	// The inline ablation also measures native time, so it too is opt-in.
	if *table == "inline" {
		if err := inlineTable(); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: inline: %v\n", err)
			os.Exit(1)
		}
	}
	// The batched-ingress table measures native time as well: opt-in.
	if *table == "batch" {
		if err := batchTable(); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: batch: %v\n", err)
			os.Exit(1)
		}
	}
	// The journal table measures native time and touches the filesystem
	// (fsync latency): opt-in.
	if *table == "journal" {
		if err := journalTable(); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: journal: %v\n", err)
			os.Exit(1)
		}
	}
	// The remote drill exercises the network substrate rather than the
	// paper's dispatch tables: opt-in (deterministic virtual time).
	if *table == "remote" {
		if err := remoteTable(); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: remote: %v\n", err)
			os.Exit(1)
		}
	}
	// The shard scaling sweep is deterministic virtual time; the trailing
	// routed-vs-unrouted comparison is native, so the table is opt-in.
	if *table == "shard" {
		if err := shardTable(); err != nil {
			fmt.Fprintf(os.Stderr, "spinbench: shard: %v\n", err)
			os.Exit(1)
		}
	}
}

// jsonReport is the -json output shape: the same virtual-time measurements
// the formatted tables print, keyed for machine consumption. It seeds the
// perf-trajectory file BENCH_dispatch.json.
type jsonReport struct {
	Schema string      `json:"schema"`
	Table1 *jsonTable1 `json:"table1,omitempty"`
	// Table2Us maps "guards=N" to the UDP roundtrip in microseconds.
	Table2Us map[string]float64 `json:"table2_us,omitempty"`
	Install  *jsonInstall       `json:"install,omitempty"`
	// AsyncUs maps "args=N" to the asynchronous raise overhead in
	// microseconds.
	AsyncUs map[string]float64 `json:"async_us,omitempty"`
	Micro   *jsonMicro         `json:"micro,omitempty"`
	Shard   *jsonShard         `json:"shard,omitempty"`
}

type jsonTable1 struct {
	// ProcCallUs maps "args=N" to the direct-call latency in microseconds.
	ProcCallUs map[string]float64 `json:"proc_call_us"`
	// NoInlineUs and InlineUs map "args=N/handlers=M" to dispatch latency
	// in microseconds.
	NoInlineUs map[string]float64 `json:"no_inline_us"`
	InlineUs   map[string]float64 `json:"inline_us"`
}

type jsonInstall struct {
	FirstUs    float64 `json:"first_us"`
	Total100Us float64 `json:"total_100_us"`
}

type jsonMicro struct {
	SyscallDirectUs    float64 `json:"syscall_direct_us"`
	SyscallEventedUs   float64 `json:"syscall_evented_us"`
	SyscallOverheadPct float64 `json:"syscall_overhead_pct"`
	ThreadDirectUs     float64 `json:"thread_direct_us"`
	ThreadEventedUs    float64 `json:"thread_evented_us"`
	ThreadOverheadPct  float64 `json:"thread_overhead_pct"`
}

// emitJSON regenerates the selected tables and encodes them as one JSON
// object on w.
func emitJSON(w *os.File, table string) error {
	want := func(name string) bool { return table == "all" || table == name }
	rep := jsonReport{Schema: "spinbench/v1"}

	if want("1") {
		r, err := bench.Table1()
		if err != nil {
			return err
		}
		t1 := &jsonTable1{
			ProcCallUs: map[string]float64{},
			NoInlineUs: map[string]float64{},
			InlineUs:   map[string]float64{},
		}
		for _, a := range r.Args {
			t1.ProcCallUs[fmt.Sprintf("args=%d", a)] = r.ProcCall[a]
			for _, h := range r.Handlers {
				key := fmt.Sprintf("args=%d/handlers=%d", a, h)
				t1.NoInlineUs[key] = r.NoInline[[2]int{a, h}]
				t1.InlineUs[key] = r.Inline[[2]int{a, h}]
			}
		}
		rep.Table1 = t1
	}
	if want("2") {
		rep.Table2Us = map[string]float64{}
		for _, guards := range []int{1, 5, 10, 50} {
			rt, err := bench.Table2Roundtrip(guards)
			if err != nil {
				return err
			}
			rep.Table2Us[fmt.Sprintf("guards=%d", guards)] = vtime.InMicros(rt)
		}
	}
	if want("install") {
		first, total, err := bench.InstallOverhead(100)
		if err != nil {
			return err
		}
		rep.Install = &jsonInstall{
			FirstUs:    vtime.InMicros(first),
			Total100Us: vtime.InMicros(total),
		}
	}
	if want("async") {
		rep.AsyncUs = map[string]float64{}
		for _, args := range []int{0, 1, 5} {
			d, err := bench.AsyncOverhead(args)
			if err != nil {
				return err
			}
			rep.AsyncUs[fmt.Sprintf("args=%d", args)] = vtime.InMicros(d)
		}
	}
	if want("micro") {
		m, err := bench.Micro()
		if err != nil {
			return err
		}
		rep.Micro = &jsonMicro{
			SyscallDirectUs:    vtime.InMicros(m.SyscallDirect),
			SyscallEventedUs:   vtime.InMicros(m.SyscallEvented),
			SyscallOverheadPct: m.SyscallOverheadPct(),
			ThreadDirectUs:     vtime.InMicros(m.ThreadDirect),
			ThreadEventedUs:    vtime.InMicros(m.ThreadEvented),
			ThreadOverheadPct:  m.ThreadOverheadPct(),
		}
	}
	// Like the remote drill, the shard table is opt-in rather than part
	// of "all": deterministic, but not one of the paper's tables.
	if table == "shard" {
		s, err := shardJSON()
		if err != nil {
			return err
		}
		rep.Shard = s
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func table1() error {
	r, err := bench.Table1()
	if err != nil {
		return err
	}
	paperNoInline := map[[2]int]float64{
		{0, 1}: 0.37, {0, 5}: 1.18, {0, 10}: 2.15, {0, 50}: 11.69,
		{1, 1}: 0.39, {1, 5}: 1.25, {1, 10}: 2.32, {1, 50}: 11.51,
		{5, 1}: 0.97, {5, 5}: 1.61, {5, 10}: 2.88, {5, 50}: 14.45,
	}
	paperInline := map[[2]int]float64{
		{0, 1}: 0.23, {0, 5}: 0.41, {0, 10}: 0.63, {0, 50}: 2.48,
		{1, 1}: 0.24, {1, 5}: 0.45, {1, 10}: 0.72, {1, 50}: 2.87,
		{5, 1}: 0.42, {5, 5}: 1.55, {5, 10}: 1.32, {5, 50}: 5.65,
	}
	paperProc := map[int]float64{0: 0.10, 1: 0.13, 5: 0.14}

	fmt.Println("Table 1: event dispatch overhead (us); measured [paper]")
	fmt.Printf("%-6s %-16s", "args", "procedure call")
	for _, h := range r.Handlers {
		fmt.Printf(" %-13s %-13s", fmt.Sprintf("%dh no-inline", h), fmt.Sprintf("%dh inline", h))
	}
	fmt.Println()
	for _, a := range r.Args {
		fmt.Printf("%-6d %5.2f [%4.2f]    ", a, r.ProcCall[a], paperProc[a])
		for _, h := range r.Handlers {
			k := [2]int{a, h}
			fmt.Printf(" %5.2f [%5.2f] %5.2f [%5.2f]",
				r.NoInline[k], paperNoInline[k], r.Inline[k], paperInline[k])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func table2() error {
	fmt.Println("Table 2: UDP roundtrip vs. guards on the packet event (us); measured [paper]")
	paper := map[int]float64{1: 475, 5: 481, 10: 487, 50: 530}
	for _, guards := range []int{1, 5, 10, 50} {
		rt, err := bench.Table2Roundtrip(guards)
		if err != nil {
			return err
		}
		fmt.Printf("  %2d guards: %6.1f [%4.0f]\n", guards, vtime.InMicros(rt), paper[guards])
	}
	fmt.Println()
	return nil
}

func table2Tree() error {
	fmt.Println("Table 2 under the guard decision tree (the paper's §3.2 future work):")
	fmt.Println("  inline ArgEq port guards + codegen.EnableDecisionTree; linear scan alongside")
	for _, guards := range []int{1, 5, 10, 50} {
		opt, err := bench.Table2RoundtripOptimized(guards)
		if err != nil {
			return err
		}
		lin, err := bench.Table2Roundtrip(guards)
		if err != nil {
			return err
		}
		fmt.Printf("  %2d guards: tree %6.1f us | linear %6.1f us\n",
			guards, vtime.InMicros(opt), vtime.InMicros(lin))
	}
	fmt.Println()
	return nil
}

func installOverhead() error {
	first, total, err := bench.InstallOverhead(100)
	if err != nil {
		return err
	}
	fmt.Println("Installation overhead (§3.1); measured [paper]")
	fmt.Printf("  one handler:        %6.1f us [~150 us]\n", vtime.InMicros(first))
	fmt.Printf("  100 on one event:   %6.1f ms [~30 ms] (O(n^2) total)\n",
		vtime.InMicros(total)/1000)
	fmt.Println()
	return nil
}

func asyncOverhead() error {
	fmt.Println("Asynchronous raise overhead (§3.1); paper band 38-90 us")
	for _, args := range []int{0, 1, 5} {
		d, err := bench.AsyncOverhead(args)
		if err != nil {
			return err
		}
		fmt.Printf("  %d args: %5.1f us\n", args, vtime.InMicros(d))
	}
	fmt.Println()
	return nil
}

func micro() error {
	m, err := bench.Micro()
	if err != nil {
		return err
	}
	fmt.Println("Event overhead on basic services (§3.1); paper band 10-15%")
	fmt.Printf("  null syscall:   direct %6.2f us, evented %6.2f us -> %4.1f%%\n",
		vtime.InMicros(m.SyscallDirect), vtime.InMicros(m.SyscallEvented), m.SyscallOverheadPct())
	fmt.Printf("  thread switch:  direct %6.2f us, evented %6.2f us -> %4.1f%%\n",
		vtime.InMicros(m.ThreadDirect), vtime.InMicros(m.ThreadEvented), m.ThreadOverheadPct())
	fmt.Println()
	return nil
}

// faultsTable measures native raise throughput with the fault-isolation
// subsystem active while a deterministic injector panics in the handler at
// a fixed rate. The budget is unreachable, so the binding is never
// quarantined: the scenario isolates the per-raise cost of protection
// (recovery barriers in the plan) and of recording a fault when one fires.
// The zero-rate row is the acceptance bound — it must stay within noise of
// the unprotected fast path, with 0 allocs/raise.
func faultsTable() error {
	fmt.Println("Raise throughput under injected handler panics (native time, 1 word arg)")
	sig := rtti.Sig(nil, rtti.Word)
	mod := rtti.NewModule("Bench")
	measure := func(label string, withPolicy bool, every uint64) error {
		var opts []dispatch.Option
		if withPolicy {
			opts = append(opts, dispatch.WithFaultPolicy(fault.Policy{
				Budget: 1 << 30, ProbationBudget: 1 << 30,
				Backoff: time.Hour, History: 16,
			}))
		}
		d := dispatch.New(opts...)
		impl := func(any, []any) any { return nil }
		if every > 0 {
			impl = fault.NewInjector().PanicEvery("bench", every, 0).Handler("bench", impl)
		}
		ev, err := d.DefineEvent("Bench.Faults", sig, dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Bench.H", Module: mod, Sig: sig},
			Fn:   impl,
		}))
		if err != nil {
			return err
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Raise1(uint64(7)); err != nil {
					b.Fatal(err)
				}
			}
		})
		faults := ""
		if withPolicy {
			faults = fmt.Sprintf("  (%d faults recorded)", d.FaultLedger().Total())
		}
		fmt.Printf("  %-22s %7.1f ns/op  %d allocs/op%s\n",
			label, float64(res.T.Nanoseconds())/float64(res.N), res.AllocsPerOp(), faults)
		return nil
	}
	if err := measure("policy off", false, 0); err != nil {
		return err
	}
	if err := measure("policy on, 0% faults", true, 0); err != nil {
		return err
	}
	if err := measure("policy on, 0.1% faults", true, 1000); err != nil {
		return err
	}
	if err := measure("policy on, 1% faults", true, 100); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// inlineTable is the Table-1-style ablation for plan specialization
// (DESIGN.md decision 15), measured in native time on the inline-plan
// shape (five guarded inline handlers, one word argument): the per-step
// interpreter, the flattened guard tree through the generic executor, and
// the fully shape-specialized executor, with the single-handler bypass
// alongside as the floor the specialized plan is chasing.
func inlineTable() error {
	fmt.Println("Plan-specialization ablation on the inline plan (native time, 5 inline handlers, 1 word arg)")
	sig := rtti.Sig(nil, rtti.Word)
	mod := rtti.NewModule("Bench")
	var bypassNs, specNs float64
	measure := func(label string, opts codegen.Options, bypass bool) (float64, error) {
		d := dispatch.New(dispatch.WithCodegenOptions(opts))
		var ev *dispatch.Event
		var err error
		if bypass {
			ev, err = d.DefineEvent("Bench.Inline", sig, dispatch.WithIntrinsic(dispatch.Handler{
				Proc: &rtti.Proc{Name: "Bench.H", Module: mod, Sig: sig},
				Fn:   func(any, []any) any { return nil },
			}))
		} else {
			ev, err = d.DefineEvent("Bench.Inline", sig)
		}
		if err != nil {
			return 0, err
		}
		if !bypass {
			var cell atomic.Uint64
			for i := 0; i < 5; i++ {
				_, err := ev.Install(dispatch.Handler{
					Proc:   &rtti.Proc{Name: "Bench.H", Module: mod, Sig: sig},
					Inline: codegen.Nop(),
				}, dispatch.WithGuard(dispatch.Guard{Pred: codegen.GlobalEq(&cell, 0)}))
				if err != nil {
					return 0, err
				}
			}
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Raise1(uint64(7)); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		fmt.Printf("  %-28s %7.1f ns/op  %d allocs/op\n", label, ns, res.AllocsPerOp())
		return ns, nil
	}
	var err error
	if bypassNs, err = measure("bypass (1 unguarded)", codegen.Options{}, true); err != nil {
		return err
	}
	noBypass := codegen.Options{DisableBypass: true}
	if _, err = measure("interpreter", codegen.Options{DisableBypass: true, DisableSpecialize: true}, false); err != nil {
		return err
	}
	if _, err = measure("flattened tree (generic)", codegen.Options{DisableBypass: true, DisableShapeSpecialize: true}, false); err != nil {
		return err
	}
	if specNs, err = measure("shape-specialized", noBypass, false); err != nil {
		return err
	}
	if bypassNs > 0 {
		fmt.Printf("  specialized/bypass ratio: %.2fx (acceptance bound 2.00x)\n", specNs/bypassNs)
	}
	fmt.Println()
	return nil
}

// batchTable measures the batched raise ingress against a loop of single
// raises (native time) on the two plan shapes the batch tier specializes:
// the single-binding bypass (where the per-raise fixed costs dominate, so
// amortization shows its full effect) and the five-guard inline plan
// (where guard-walk work per frame bounds the win). Each row offers the
// same raises, singly and as RaiseBatch1 trains of 1, 8, and 64 frames.
func batchTable() error {
	fmt.Println("Batched raise ingress vs. single-raise loop (native time, 1 word arg)")
	sig := rtti.Sig(nil, rtti.Word)
	mod := rtti.NewModule("Bench")
	shape := func(label string, mk func() (*dispatch.Event, error)) error {
		ev, err := mk()
		if err != nil {
			return err
		}
		single := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Raise1(uint64(7)); err != nil {
					b.Fatal(err)
				}
			}
		})
		singleNs := float64(single.T.Nanoseconds()) / float64(single.N)
		fmt.Printf("  %-12s single        %7.1f ns/raise  %9.0f raises/s  %d allocs/op\n",
			label, singleNs, 1e9/singleNs, single.AllocsPerOp())
		for _, n := range []int{1, 8, 64} {
			flat := make([]any, n)
			for i := range flat {
				flat[i] = uint64(7)
			}
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i += n {
					if out := ev.RaiseBatch1(flat); out.Raised != n {
						b.Fatalf("batch outcome: %+v", out)
					}
				}
			})
			ns := float64(res.T.Nanoseconds()) / float64(res.N) // per frame: b.N counts frames
			fmt.Printf("  %-12s batch n=%-4d  %7.1f ns/raise  %9.0f raises/s  %d allocs/op  (%.2fx single)\n",
				label, n, ns, 1e9/ns, res.AllocsPerOp(), singleNs/ns)
		}
		return nil
	}
	if err := shape("bypass", func() (*dispatch.Event, error) {
		d := dispatch.New()
		return d.DefineEvent("Bench.Batch", sig, dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Bench.H", Module: mod, Sig: sig},
			Fn:   func(any, []any) any { return nil },
		}))
	}); err != nil {
		return err
	}
	if err := shape("inline-plan", func() (*dispatch.Event, error) {
		d := dispatch.New(dispatch.WithCodegenOptions(codegen.Options{DisableBypass: true}))
		ev, err := d.DefineEvent("Bench.Batch", sig)
		if err != nil {
			return nil, err
		}
		var cell atomic.Uint64
		for i := 0; i < 5; i++ {
			if _, err := ev.Install(dispatch.Handler{
				Proc:   &rtti.Proc{Name: "Bench.H", Module: mod, Sig: sig},
				Inline: codegen.Nop(),
			}, dispatch.WithGuard(dispatch.Guard{Pred: codegen.GlobalEq(&cell, 0)})); err != nil {
				return nil, err
			}
		}
		return ev, nil
	}); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// journalTable measures what the lifecycle journal costs the raise fast
// path (native time, bypass shape, one word arg) at each sampling rate,
// and what a group commit costs at each batch size. The journal-off row
// is the acceptance bound: the plan carries no journal field, so it must
// match the bare dispatcher within noise at 0 allocs/op. Sampling rows
// use a MemSink so they price the dispatcher-side draw + enqueue, not
// the disk. The flush sweep uses a FileSink (fsync per seal) so the
// batch-size trade-off — durability window vs. per-record cost — is the
// one an operator actually faces.
func journalTable() error {
	fmt.Println("Journaled raise overhead by sampling rate (native time, bypass shape, 1 word arg, MemSink)")
	sig := rtti.Sig(nil, rtti.Word)
	mod := rtti.NewModule("Bench")
	var offNs float64
	measure := func(label string, sample int) (float64, error) {
		var opts []dispatch.Option
		var j *journal.Journal
		if sample >= 0 {
			j = journal.New(journal.Config{
				Sink:         journal.NewMemSink(),
				SampleRaises: sample,
				// Size-triggered seals only: the timer would add
				// scheduler noise to the measurement.
				FlushInterval: -1,
			})
			defer j.Close()
			opts = append(opts, dispatch.WithJournal(j))
		}
		d := dispatch.New(opts...)
		ev, err := d.DefineEvent("Bench.Journal", sig, dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Bench.H", Module: mod, Sig: sig},
			Fn:   func(any, []any) any { return nil },
		}))
		if err != nil {
			return 0, err
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Raise1(uint64(7)); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		trail := ""
		if j != nil {
			s := j.Stats()
			trail = fmt.Sprintf("  (%d sampled, %d shed)", s.Submitted, s.DroppedRaises)
		}
		fmt.Printf("  %-18s %7.1f ns/op  %d allocs/op%s\n", label, ns, res.AllocsPerOp(), trail)
		return ns, nil
	}
	var err error
	if offNs, err = measure("journal off", -1); err != nil {
		return err
	}
	for _, s := range []struct {
		label  string
		sample int
	}{{"sampled 1/1024", 1024}, {"sampled 1/64", 64}, {"sampled 1/1", 1}} {
		ns, err := measure(s.label, s.sample)
		if err != nil {
			return err
		}
		if s.sample == 1024 && offNs > 0 {
			fmt.Printf("  1/1024 delta vs off: %+.1f%% (acceptance bound +5%%)\n", 100*(ns-offNs)/offNs)
		}
	}

	fmt.Println()
	fmt.Println("Group-commit cost vs batch size (FileSink, fsync per seal, lifecycle records)")
	dir, err := os.MkdirTemp("", "spinbench-journal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	const total = 1 << 12
	for _, batch := range []int{8, 64, 512} {
		sink, err := journal.OpenFileSink(fmt.Sprintf("%s/b%d.sj", dir, batch))
		if err != nil {
			return err
		}
		j := journal.New(journal.Config{
			Sink:          sink,
			BatchRecords:  batch,
			BatchBytes:    1 << 30, // record-count trigger only
			FlushInterval: -1,
		})
		rec := journal.Record{Kind: journal.KindInstall, ID: 1,
			Event: "Bench.Journal", Module: "Bench", Handler: "Bench.H"}
		start := time.Now()
		for i := 0; i < total; i++ {
			j.Record(rec)
		}
		if err := j.Close(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		s := j.Stats()
		perRec := float64(elapsed.Nanoseconds()) / total
		perSeal := float64(elapsed.Microseconds()) / float64(s.Batches)
		fmt.Printf("  batch=%-4d %4d seals  %7.0f ns/record  %8.1f us/commit  %6.1f KiB\n",
			batch, s.Batches, perRec, perSeal, float64(s.Bytes)/1024)
	}
	fmt.Println()
	return nil
}

// showDisasm prints the generated dispatch plan for three representative
// configurations, the analog of dumping the runtime-generated stubs.
func showDisasm() {
	var cell atomic.Uint64
	mk := func(bindings []*codegen.Binding, opts codegen.Options) {
		p := codegen.Compile(codegen.EventInfo{Name: "Demo.Event", Arity: 1},
			bindings, nil, nil, opts)
		fmt.Println(p.Disassemble())
	}
	fmt.Println("-- intrinsic only: bypassed entirely --")
	mk([]*codegen.Binding{{Fn: func(any, []any) any { return nil }}}, codegen.Options{})
	fmt.Println("-- guarded handlers, fully inlined --")
	mk([]*codegen.Binding{
		{Guards: []codegen.Guard{{Pred: codegen.GlobalEq(&cell, 0)}}, Inline: codegen.Nop()},
		{Guards: []codegen.Guard{{Pred: codegen.ArgEq(0, 80)}}, Inline: codegen.AddWord(&cell, 1)},
	}, codegen.Options{})
	fmt.Println("-- mixed out-of-line with peephole dead-code elimination --")
	mk([]*codegen.Binding{
		{Guards: []codegen.Guard{{Pred: codegen.And(codegen.True(), codegen.ArgEq(0, 7))}},
			Fn: func(any, []any) any { return nil }},
		{Guards: []codegen.Guard{{Pred: codegen.False()}}, Fn: func(any, []any) any { return nil }},
		{Fn: func(any, []any) any { return nil }, Async: true},
	}, codegen.Options{})
}

// overloadTable measures asynchronous raise behaviour as offered load
// climbs past the drain capacity of the admission worker pool (native
// time). The pool's real capacity is calibrated first — a saturating flood
// measures what the host actually drains, so the 1x/4x/16x multiples are
// honest on any core count — then producers pace an open load at each
// multiple. At 1x the shed rate should be low; at 16x the Shed policy
// keeps goroutines bounded and rejects the excess instead of queueing
// without bound.
func overloadTable() error {
	const (
		workers   = 4
		service   = 200 * time.Microsecond
		duration  = 300 * time.Millisecond
		producers = 8
	)
	runPoint := func(offered float64, dur time.Duration) (admit.QueueStats, float64, error) {
		pol := admit.Policy{Mode: admit.Shed, Depth: 64}
		d := dispatch.New(dispatch.WithAdmission(dispatch.AdmissionConfig{
			Workers: workers, Default: &pol,
		}))
		sig := rtti.Sig(nil, rtti.Word)
		ev, err := d.DefineEvent("Bench.Overload", sig,
			dispatch.AsAsync(),
			dispatch.WithIntrinsic(dispatch.Handler{
				Proc: &rtti.Proc{Name: "Bench.H", Module: rtti.NewModule("Bench"), Sig: sig},
				Fn: func(any, []any) any {
					// Busy-wait: time.Sleep rounds 200us up to ~1ms on
					// stock kernels, which would understate capacity.
					end := time.Now().Add(service)
					for time.Now().Before(end) {
					}
					return nil
				},
			}))
		if err != nil {
			return admit.QueueStats{}, 0, err
		}
		// Self-correcting pacing: each producer tracks how many raises its
		// share of the offered rate is due by now and catches up, so the
		// rate holds regardless of host timer granularity. offered <= 0
		// floods (calibration).
		perProd := offered / float64(producers)
		var wg sync.WaitGroup
		start := time.Now()
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sent := 0
				for {
					elapsed := time.Since(start)
					if elapsed >= dur {
						return
					}
					if offered <= 0 {
						_ = ev.RaiseAsync(uint64(sent))
						sent++
					} else {
						for due := int(perProd * elapsed.Seconds()); sent < due; sent++ {
							_ = ev.RaiseAsync(uint64(sent))
						}
					}
					runtime.Gosched()
				}
			}()
		}
		wg.Wait()
		// Let the queue settle so the ledger is final.
		q := ev.AdmissionQueue()
		for !q.Stats().Drained() {
			time.Sleep(time.Millisecond)
		}
		return q.Stats(), time.Since(start).Seconds(), nil
	}

	cal, calSecs, err := runPoint(0, 150*time.Millisecond)
	if err != nil {
		return err
	}
	capacity := float64(cal.Completed) / calSecs
	fmt.Printf("Async raise under offered load (native time, Shed policy, %d workers, %v busy service, GOMAXPROCS=%d)\n",
		workers, service, runtime.GOMAXPROCS(0))
	fmt.Printf("  calibrated drain capacity: %7.0f raises/s\n", capacity)
	for _, mult := range []int{1, 4, 16} {
		s, secs, err := runPoint(capacity*float64(mult), duration)
		if err != nil {
			return err
		}
		shedPct := 0.0
		if s.Submitted > 0 {
			shedPct = 100 * float64(s.Shed) / float64(s.Submitted)
		}
		fmt.Printf("  %2dx offered (%7.0f/s): submitted %6d  served %7.0f/s  shed %5.1f%%  max depth %3d\n",
			mult, capacity*float64(mult), s.Submitted, float64(s.Completed)/secs, shedPct, s.MaxDepth)
	}
	fmt.Println()
	return nil
}
