package main

import (
	"fmt"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/shard"
)

// shardTable prints the sharded-plane scaling table: aggregate raise
// throughput under install/raise churn at 1, 2, 4, and 8 shards, measured
// in deterministic virtual time (each shard meters its own Alpha-model
// clock; the plane's makespan is the slowest shard), plus the native-time
// routed-vs-unrouted bypass comparison TestBenchSmokeShard gates on.
func shardTable() error {
	fmt.Println("Sharded dispatch plane: raise throughput under install/raise churn")
	fmt.Println("  (virtual time, 256 events, 8 install rounds x 32 raises, per-shard Alpha clocks)")
	pts, err := shard.MeasureScalingSweep([]int{1, 2, 4, 8}, shard.ScalingConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("  %-7s %9s %9s %12s %14s %9s %9s\n",
		"shards", "installs", "raises", "makespan ms", "raises/sec", "speedup", "balance")
	for _, p := range pts {
		fmt.Printf("  %-7d %9d %9d %12.2f %14.0f %8.2fx %9.2f\n",
			p.Shards, p.Installs, p.Raises, float64(p.Makespan)/1e6,
			p.Throughput, p.Speedup, p.Balance)
	}

	routedNs, plainNs, err := shardRoutedVsPlain()
	if err != nil {
		return err
	}
	fmt.Printf("  routed bypass raise (4 shards resident): %6.1f ns/op native\n", routedNs)
	fmt.Printf("  unrouted bypass raise (plain dispatcher): %5.1f ns/op native\n", plainNs)
	if plainNs > 0 {
		fmt.Printf("  routed/unrouted ratio: %.2fx (acceptance bound 1.15x)\n", routedNs/plainNs)
	}
	fmt.Println()
	return nil
}

// shardRoutedVsPlain measures the native serial cost of a synchronous
// bypass raise through a 4-shard router's pinned route against the same
// raise on a bare dispatcher event.
func shardRoutedVsPlain() (routedNs, plainNs float64, err error) {
	sig := rtti.Sig(nil, rtti.Word)
	mod := rtti.NewModule("Bench")
	intrinsic := dispatch.WithIntrinsic(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Bench.H", Module: mod, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	})

	r, err := shard.NewRouter(shard.Config{Shards: 4})
	if err != nil {
		return 0, 0, err
	}
	re, err := r.DefineEvent("Bench.Routed", sig, intrinsic)
	if err != nil {
		return 0, 0, err
	}
	d := dispatch.New()
	pe, err := d.DefineEvent("Bench.Plain", sig, intrinsic)
	if err != nil {
		return 0, 0, err
	}

	measure := func(raise func() error) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := raise(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}
	routedNs = measure(func() error { _, err := re.Raise1(uint64(7)); return err })
	plainNs = measure(func() error { _, err := pe.Raise1(uint64(7)); return err })
	return routedNs, plainNs, nil
}

// jsonShard is the machine-readable shard table (spinbench -json -table
// shard), uploaded as a CI artifact and seeded into BENCH_dispatch.json.
type jsonShard struct {
	// Scaling maps "shards=N" to the virtual-time point.
	Scaling map[string]jsonShardPoint `json:"scaling"`
	// Speedup4x is the headline acceptance figure: 4-shard aggregate
	// raise throughput over 1-shard.
	Speedup4x float64 `json:"speedup_4x"`
}

type jsonShardPoint struct {
	Installs   int64   `json:"installs"`
	Raises     int64   `json:"raises"`
	MakespanMs float64 `json:"makespan_ms"`
	RaisesSec  float64 `json:"raises_per_sec"`
	Speedup    float64 `json:"speedup"`
	Balance    float64 `json:"balance"`
}

func shardJSON() (*jsonShard, error) {
	pts, err := shard.MeasureScalingSweep([]int{1, 2, 4, 8}, shard.ScalingConfig{})
	if err != nil {
		return nil, err
	}
	out := &jsonShard{Scaling: map[string]jsonShardPoint{}}
	for _, p := range pts {
		out.Scaling[fmt.Sprintf("shards=%d", p.Shards)] = jsonShardPoint{
			Installs:   p.Installs,
			Raises:     p.Raises,
			MakespanMs: float64(p.Makespan) / 1e6,
			RaisesSec:  p.Throughput,
			Speedup:    p.Speedup,
			Balance:    p.Balance,
		}
		if p.Shards == 4 {
			out.Speedup4x = p.Speedup
		}
	}
	return out, nil
}
