package main

import (
	"fmt"
	"strings"

	"spin/internal/remote"
)

// remoteTable prints the remote-raise drill as a bench table: the
// clean-wire latency crossover, the lossy-phase delivery accounting, and
// the partition-phase breaker walk. The drill runs entirely in virtual
// time, so the figures are deterministic per seed; it is opt-in rather
// than part of "all" because it exercises the network substrate, not the
// paper's dispatch tables.
func remoteTable() error {
	rep, err := remote.RunDrill(42)
	if err != nil {
		return err
	}
	fmt.Println("Remote raise drill (two simulated machines, seed 42)")
	fmt.Println()
	fmt.Printf("  %-28s %12s\n", "figure", "value")
	fmt.Printf("  %-28s %9.2f µs\n", "remote raise→ack RTT", rep.CleanRTTUs)
	fmt.Printf("  %-28s %9.2f µs\n", "local raise", rep.LocalRaiseUs)
	fmt.Printf("  %-28s %8.0fx\n", "latency crossover", rep.CrossoverX)
	fmt.Printf("  %-28s %9d / %d\n", "lossy delivered+deduped",
		rep.LossyDelivered+rep.LossyDeduped, rep.LossyRaises)
	fmt.Printf("  %-28s %9d\n", "lossy retries", rep.LossyRetried)
	fmt.Printf("  %-28s %9d\n", "wire frames dropped", rep.WireDrops)
	fmt.Printf("  %-28s %9d = %d fired\n", "applied on receiver",
		rep.LossyApplied, rep.LossyFired)
	fmt.Printf("  %-28s %9d\n", "partition reroutes", rep.PartitionRerouted)
	fmt.Printf("  %-28s %9d\n", "partition sheds", rep.PartitionShed)
	fmt.Printf("  %-28s %9s\n", "breaker walk",
		strings.Join(rep.Transitions, " → "))
	if rep.LossyApplied != rep.LossyFired ||
		rep.LossyDelivered+rep.LossyDeduped != rep.LossyApplied {
		return fmt.Errorf("exactly-once violated: delivered=%d deduped=%d applied=%d fired=%d",
			rep.LossyDelivered, rep.LossyDeduped, rep.LossyApplied, rep.LossyFired)
	}
	fmt.Println()
	fmt.Println("  exactly-once: every accepted raise fired exactly one handler pass")
	return nil
}
