// Command spinload drills the overload-control subsystem: it ramps offered
// asynchronous load on a real-time (unmetered) dispatcher from well under
// the admission pool's drain capacity to far past it, printing the queue,
// shed, pool, and degradation statistics at each step. Two handlers are
// installed on the loaded event — one essential, one in an optional
// priority class — so the ramp also shows the degradation controller
// stepping through its ladder: as depth and shed rate cross the configured
// thresholds the optional binding is compiled out of the dispatch plan,
// and as the ramp descends and calm observations accumulate it is compiled
// back in.
//
//	spinload                     default ramp: 0.5x 2x 8x 16x 4x 0.5x
//	spinload -step 500ms         longer steps
//	spinload -workers 8 -depth 128
//
// The drill is native-time (goroutines, wall-clock pacing), so exact
// figures vary by host; the shape — bounded depth, shed rate tracking
// overload, degradation engaging and releasing — is the point.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spin/internal/admit"
	"spin/internal/dispatch"
	"spin/internal/rtti"
)

func main() {
	step := flag.Duration("step", 250*time.Millisecond, "wall-clock duration of each ramp step")
	workers := flag.Int("workers", 4, "admission pool worker cap")
	depth := flag.Int("depth", 64, "admission queue depth")
	service := flag.Duration("service", 200*time.Microsecond, "simulated handler service time (busy-wait)")
	flag.Parse()

	pol := admit.Policy{Mode: admit.Shed, Depth: *depth}
	d := dispatch.New(dispatch.WithAdmission(dispatch.AdmissionConfig{
		Workers: *workers,
		Default: &pol,
		Levels: []admit.Level{
			{Name: "brownout", QueueDepth: *depth / 2, ShedRate: 0.10, MinPriority: 2},
			{Name: "blackout", QueueDepth: *depth, ShedRate: 0.50, MinPriority: 1},
		},
		Hold:        2,
		SampleEvery: 16,
	}))

	sig := rtti.Sig(nil, rtti.Word)
	mod := rtti.NewModule("Load")
	ev, err := d.DefineEvent("Load.Request", sig, dispatch.AsAsync(), dispatch.WithOwner(mod))
	if err != nil {
		log.Fatal(err)
	}
	var essential, optional atomic.Int64
	_, err = ev.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Load.Serve", Module: mod, Sig: sig},
		Fn: func(any, []any) any {
			end := time.Now().Add(*service)
			for time.Now().Before(end) {
			}
			essential.Add(1)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The optional extra (think: per-request analytics) rides in priority
	// class 2, first to be degraded away under load.
	_, err = ev.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Load.Extra", Module: mod, Sig: sig},
		Fn: func(any, []any) any {
			optional.Add(1)
			return nil
		},
	}, dispatch.WithPriority(2))
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the host's real drain capacity with a short saturating
	// flood, so the ramp multiples are honest on any core count.
	capacity := calibrate(ev, 150*time.Millisecond)
	fmt.Printf("spinload: %d workers, depth %d, %v service, GOMAXPROCS=%d\n",
		*workers, *depth, *service, runtime.GOMAXPROCS(0))
	fmt.Printf("calibrated drain capacity: %.0f raises/s\n\n", capacity)
	fmt.Printf("%6s %10s %10s %8s %7s %6s %5s  %s\n",
		"load", "offered/s", "served/s", "shed", "shed%", "depth", "pool", "level")

	q := ev.AdmissionQueue()
	var prev admit.QueueStats
	for _, mult := range []float64{0.5, 2, 8, 16, 4, 0.5} {
		offer(ev, capacity*mult, *step)
		// A few explicit observations give the controller a chance to
		// de-escalate on the calm half of the ramp even when the sampled
		// cadence has gone quiet.
		for i := 0; i < 3; i++ {
			d.ObserveAdmission()
		}
		s := q.Stats()
		dSub := s.Submitted - prev.Submitted
		dCompleted := s.Completed - prev.Completed
		dShed := s.Shed - prev.Shed
		prev = s
		shedPct := 0.0
		if dSub > 0 {
			shedPct = 100 * float64(dShed) / float64(dSub)
		}
		lvl, name := d.AdmissionLevel()
		ps := d.AdmissionPool()
		fmt.Printf("%5.1fx %10.0f %10.0f %8d %6.1f%% %6d %2d/%-2d  %d:%s\n",
			mult, capacity*mult, float64(dCompleted)/step.Seconds(), dShed, shedPct,
			s.Depth, ps.Running, ps.Capacity, lvl, name)
	}

	// Drain and report the final ledger: every submission accounted for.
	for !q.Stats().Drained() {
		time.Sleep(time.Millisecond)
	}
	s := q.Stats()
	fmt.Printf("\nledger: submitted=%d completed=%d shed=%d coalesced=%d (identity holds: %v)\n",
		s.Submitted, s.Completed, s.Shed, s.Coalesced,
		s.Submitted == s.Completed+s.Shed+s.Coalesced)
	fmt.Printf("handlers: essential=%d optional=%d (gap = raises served degraded)\n",
		essential.Load(), optional.Load())
	lvl, name := d.AdmissionLevel()
	fmt.Printf("final degradation level: %d:%s\n", lvl, name)
}

// calibrate floods the event briefly and returns the measured drain rate.
func calibrate(ev *dispatch.Event, dur time.Duration) float64 {
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; time.Since(start) < dur; i++ {
				_ = ev.RaiseAsync(uint64(i))
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	q := ev.AdmissionQueue()
	for !q.Stats().Drained() {
		time.Sleep(time.Millisecond)
	}
	return float64(q.Stats().Completed) / time.Since(start).Seconds()
}

// offer paces an open load of rate raises/s at the event for dur,
// self-correcting against host timer granularity.
func offer(ev *dispatch.Event, rate float64, dur time.Duration) {
	const producers = 4
	perProd := rate / producers
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent := 0
			for {
				elapsed := time.Since(start)
				if elapsed >= dur {
					return
				}
				for due := int(perProd * elapsed.Seconds()); sent < due; sent++ {
					_ = ev.RaiseAsync(uint64(sent))
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
}
