// Command spintrace replays the repository's example scenarios with
// dispatch tracing enabled and emits the recorded raise spans, either as
// Chrome trace_event JSON (loadable in chrome://tracing or
// ui.perfetto.dev) or as human-readable text:
//
//	spintrace -scenario webserver                 text trace of the web server replay
//	spintrace -scenario webserver -format chrome  Chrome trace_event JSON on stdout
//	spintrace -scenario syscall -sample 1         every raise of the Mach emulator replay
//	spintrace -scenario webserver -o trace.json -format chrome
//
// Tracing is compiled into each event's dispatch plan (see internal/trace),
// so the replayed scenario exercises exactly the traced-plan code paths a
// production dispatcher would run with tracing on.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"spin"
	"spin/internal/dispatch"
	"spin/internal/emu/mach"
	"spin/internal/fs"
	"spin/internal/httpd"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/trace"
	"spin/internal/trap"
	"spin/internal/vm"
)

func main() {
	scenario := flag.String("scenario", "webserver", "scenario to replay: webserver, syscall")
	format := flag.String("format", "text", "output format: text, chrome")
	sample := flag.Int("sample", 1, "record 1-in-N raises (1 = every raise)")
	capacity := flag.Int("capacity", 16384, "span ring capacity")
	out := flag.String("o", "", "write the trace to this file instead of stdout")
	flag.Parse()

	tracer := trace.New(trace.Config{Capacity: *capacity, Sample: *sample})

	var err error
	switch *scenario {
	case "webserver":
		err = replayWebserver(tracer)
	case "syscall":
		err = replaySyscall(tracer)
	default:
		err = fmt.Errorf("unknown scenario %q (want webserver or syscall)", *scenario)
	}
	if err != nil {
		log.Fatal("spintrace: ", err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal("spintrace: ", err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "chrome":
		err = tracer.ExportChrome(w)
	case "text":
		err = tracer.ExportText(w)
	default:
		err = fmt.Errorf("unknown format %q (want text or chrome)", *format)
	}
	if err != nil {
		log.Fatal("spintrace: ", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "spintrace: %d spans recorded (%d dropped), wrote %s\n",
			len(tracer.Snapshot()), tracer.Dropped(), *out)
	}
}

// replayWebserver reruns the examples/webserver scenario — a SPIN machine
// serving pages over simulated TCP with three composed extensions (a
// legacy-URL filter, a guarded /stats route, an access logger, and a
// result handler arbitrating their responses) — with machine-wide tracing.
func replayWebserver(tracer *trace.Tracer) error {
	a, err := kernel.Boot(kernel.Config{Name: "spin", Metered: true, Trace: tracer})
	if err != nil {
		return err
	}
	b, err := kernel.Boot(kernel.Config{Name: "browser", ShareWith: a})
	if err != nil {
		return err
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, _ := link.Attach("mac-a")
	nicB, _ := link.Attach("mac-b")
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		return err
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		return err
	}

	fsA, err := fs.New(a.Dispatcher, a.CPU, "")
	if err != nil {
		return err
	}
	fsA.Put("/www/index.html", []byte("<h1>The SPIN Project</h1>"))
	fsA.Put("/www/papers/events.ps", []byte("%!PS Dynamic Binding for an Extensible System"))

	srv, err := httpd.New(a.Dispatcher, httpd.Config{Stack: sa, FS: fsA, Sched: a.Sched})
	if err != nil {
		return err
	}

	// The three extensions from examples/webserver, so a traced
	// Httpd.Request raise shows filter -> guard -> handler -> merge spans.
	fsig := rtti.Signature{Args: []rtti.Type{rtti.Text},
		ByRef: []bool{true}, Result: httpd.ResponseType}
	_, err = srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Legacy.Rewrite", Module: rtti.NewModule("Legacy"), Sig: fsig},
		Fn: func(clo any, args []any) any {
			if p, ok := args[0].(string); ok {
				args[0] = strings.ToLower(p)
			}
			return nil
		},
	}, dispatch.AsFilter(), dispatch.First())
	if err != nil {
		return err
	}
	sig := srv.Request.Signature()
	_, err = srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Stats.Serve", Module: rtti.NewModule("Stats"), Sig: sig},
		Fn: func(clo any, args []any) any {
			return &httpd.Response{Status: 200, Body: []byte("stats\n")}
		},
	}, dispatch.WithGuard(httpd.RouteGuard("/stats")))
	if err != nil {
		return err
	}
	_, err = srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Log.Access", Module: rtti.NewModule("Log"), Sig: sig},
		Fn:   func(clo any, args []any) any { return (*httpd.Response)(nil) },
	}, dispatch.Last())
	if err != nil {
		return err
	}
	err = srv.Request.SetResultHandler(func(acc, res any, i int) any {
		if a, ok := acc.(*httpd.Response); ok && a != nil && a.Status == 200 {
			return a
		}
		if b, ok := res.(*httpd.Response); ok && b != nil {
			if a, ok := acc.(*httpd.Response); !ok || a == nil || b.Status == 200 {
				return b
			}
		}
		return acc
	})
	if err != nil {
		return err
	}

	paths := []string{"/", "/PAPERS/EVENTS.PS", "/stats", "/missing"}
	client, err := httpd.NewClient(sb, "10.0.0.1", 80)
	if err != nil {
		return err
	}
	sent := false
	b.Sched.Spawn("browser", 0, func(st *sched.Strand) sched.Status {
		if !client.Conn().Established() {
			client.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			for _, p := range paths {
				_ = client.Get(p)
			}
		}
		client.Pump()
		if len(client.Responses) >= len(paths) {
			_ = client.Conn().Close()
			return sched.Done
		}
		client.Conn().AwaitData(st)
		return sched.Block
	})
	a.Sim.Run(0)
	return nil
}

// replaySyscall reruns the examples/syscall-emulator scenario — two Mach
// emulator instances confined to their address spaces by imposed guards —
// with machine-wide tracing, plus one denied installation so the trace
// carries a control-plane rejection span.
func replaySyscall(tracer *trace.Tracer) error {
	m, err := spin.Boot(spin.MachineConfig{Name: "demo", Metered: true, Trace: tracer})
	if err != nil {
		return err
	}

	installingSpace := new(uint64)
	err = m.Trap.InstallAuthorizer(func(req *dispatch.AuthRequest) bool {
		if req.Op != dispatch.OpInstall {
			return true
		}
		if req.Binding.Installer() != nil && req.Binding.Installer().Name() == "Rogue" {
			return false
		}
		valid := *installingSpace
		gproc := &rtti.Proc{
			Name: "MachineTrap.ImposedSyscallGuard", Module: trap.Module,
			Functional: true,
			Sig: rtti.Signature{
				Args:   []rtti.Type{rtti.RefAny, sched.StrandType, trap.SavedStateType},
				Result: rtti.Bool,
			},
		}
		return req.ImposeGuard(dispatch.Guard{
			Proc:    gproc,
			Closure: valid,
			Fn: func(validSpace any, args []any) bool {
				return args[0].(*sched.Strand).Space() == validSpace.(uint64)
			},
		}) == nil
	})
	if err != nil {
		return err
	}

	spaceA, spaceB := m.VM.NewSpace(), m.VM.NewSpace()
	emuA := &mach.Emulator{}
	*installingSpace = spaceA.ID()
	if _, err := m.LoadExtension(imageNamed(emuA, "mach-for-A")); err != nil {
		return err
	}
	emuB := &mach.Emulator{}
	*installingSpace = spaceB.ID()
	if _, err := m.LoadExtension(imageNamed(emuB, "mach-for-B")); err != nil {
		return err
	}

	// A rogue module's denied installation: records a reject span.
	_, _ = m.Trap.Syscall.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Rogue.Spy", Module: rtti.NewModule("Rogue"),
			Sig: m.Trap.Syscall.Signature()},
		Fn: func(clo any, args []any) any { return nil },
	})

	strandA := m.Sched.Spawn("task-A", spaceA.ID(), func(*sched.Strand) sched.Status { return sched.Done })
	strandB := m.Sched.Spawn("task-B", spaceB.ID(), func(*sched.Strand) sched.Status { return sched.Done })
	emuA.MakeTask(strandA, spaceA)
	emuB.MakeTask(strandB, spaceB)

	ms := &trap.SavedState{V0: mach.Uint64(mach.TrapVMAllocate)}
	ms.A[0] = 3 * vm.PageSize
	if err := m.Trap.RaiseSyscall(strandA, ms); err != nil {
		return err
	}
	ms = &trap.SavedState{V0: mach.Uint64(mach.TrapTaskSelf)}
	if err := m.Trap.RaiseSyscall(strandB, ms); err != nil {
		return err
	}
	m.Run(0)
	return nil
}

// imageNamed wraps mach.Image with a unique domain name so two instances
// can coexist.
func imageNamed(e *mach.Emulator, name string) *spin.ExtensionImage {
	img := mach.Image(e)
	img.Name = name
	return img
}
