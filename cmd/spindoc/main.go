// Command spindoc runs the paper's end-to-end document-preview workload
// (§3.2 "Application performance"): an X11 server on the simulated SPIN
// machine displaying PostScript page images shipped over TCP from a
// machine running ghostview. It regenerates Table 3 (major events raised)
// and the total/idle/X11/kernel/events time breakdown.
//
// It doubles as the repo's schema-doc generator: -schema renders
// reference documentation generated from the same tables the encoders
// use, so the printed format cannot drift from the wire format.
//
//	spindoc                  run with the calibrated parameters
//	spindoc -pages 24        preview a longer document
//	spindoc -breakdown       print only the time breakdown
//	spindoc -schema journal  print the lifecycle-journal record schema
package main

import (
	"flag"
	"fmt"
	"os"

	"spin/internal/journal"
	"spin/internal/vtime"
	"spin/internal/x11"
)

func main() {
	pages := flag.Int("pages", 0, "number of pages to preview (0 = calibrated default)")
	pageKB := flag.Int("pagekb", 0, "page image size in KB (0 = calibrated default)")
	breakdownOnly := flag.Bool("breakdown", false, "print only the time breakdown")
	schema := flag.String("schema", "", "print a generated schema document instead of running (journal)")
	flag.Parse()

	if *schema != "" {
		switch *schema {
		case "journal":
			fmt.Print(journal.SchemaDoc())
		default:
			fmt.Fprintf(os.Stderr, "spindoc: unknown schema %q (have: journal)\n", *schema)
			os.Exit(2)
		}
		return
	}

	params := x11.Params{Pages: *pages, PageBytes: *pageKB * 1024}
	r, err := x11.Run(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spindoc: %v\n", err)
		os.Exit(1)
	}

	if !*breakdownOnly {
		fmt.Println("Table 3: major events raised while previewing a document")
		fmt.Println("(paper: Ether 2536, Ip 2529, Udp 24, Tcp 2505, OsfNet 3/3,")
		fmt.Println(" Syscall 3976, Strand.Run 7936, EventNotify 595)")
		fmt.Println()
		fmt.Print(r)
	} else {
		sec := func(d vtime.Duration) float64 { return float64(d) / 1e9 }
		fmt.Printf("total %.2fs: idle %.2fs, X11 %.2fs, kernel %.2fs, events %.3fs\n",
			sec(r.Total), sec(r.Idle), sec(r.User), sec(r.Kernel), sec(r.Events))
	}
	fmt.Printf("\npages shown: %d, bytes received: %d, traced syscalls: %d\n",
		r.PagesShown, r.BytesReceived, r.TracedSyscalls)
	fmt.Println("(paper breakdown: 23.5s total; 12.52s idle, 4.2s X11, 6.8s kernel, 0.12s events)")
}
